#pragma once
// Minimal JSON reader used to validate exported traces.
//
// The exporters write JSON by hand (no third-party dependency policy); this
// parser closes the loop so tests and the watchdog tooling can check that
// what we emit is actually well-formed and carries the expected fields. It
// parses the full grammar into a small DOM. Not a performance-critical
// path; traces are validated, not streamed, through this.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hp::obs {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  explicit JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o)
      : type_(Type::kObject),
        object_(std::make_shared<JsonObject>(std::move(o))) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }
  [[nodiscard]] const JsonArray& as_array() const noexcept { return *array_; }
  [[nodiscard]] const JsonObject& as_object() const noexcept { return *object_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const noexcept;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parse a complete JSON document. On failure returns false and describes
/// the first error (with character offset) in `*error`.
bool json_parse(const std::string& text, JsonValue* out, std::string* error);

}  // namespace hp::obs
