#include "obs/watchdog.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/table.hpp"
#include "worstcase/instances.hpp"

namespace hp::obs {

const char* shape_name(PlatformShape shape) noexcept {
  switch (shape) {
    case PlatformShape::kSingleSingle: return "1+1";
    case PlatformShape::kManyPlusOne: return "m+1";
    case PlatformShape::kGeneral: return "m+n";
    case PlatformShape::kHomogeneous: return "homogeneous";
  }
  return "?";
}

PlatformShape platform_shape(int cpus, int gpus) noexcept {
  if (cpus == 0 || gpus == 0) return PlatformShape::kHomogeneous;
  if (cpus == 1 && gpus == 1) return PlatformShape::kSingleSingle;
  if (cpus == 1 || gpus == 1) return PlatformShape::kManyPlusOne;
  return PlatformShape::kGeneral;
}

PlatformShape platform_shape(const Platform& platform) noexcept {
  return platform_shape(platform.cpus(), platform.gpus());
}

double proven_bound(int cpus, int gpus) noexcept {
  switch (platform_shape(cpus, gpus)) {
    case PlatformShape::kSingleSingle: return kPhi;            // Theorem 7
    case PlatformShape::kManyPlusOne: return 1.0 + kPhi;       // Theorem 9
    case PlatformShape::kGeneral: return 2.0 + std::sqrt(2.0); // Theorem 12
    case PlatformShape::kHomogeneous:
      // One resource class: HeteroPrio degenerates to list scheduling,
      // Graham's (2 - 1/w) bound applies. Zero surviving workers have no
      // bound to violate.
      if (cpus + gpus == 0) return std::numeric_limits<double>::infinity();
      return 2.0 - 1.0 / (cpus + gpus);
  }
  return 2.0 + std::sqrt(2.0);
}

double proven_bound(const Platform& platform) noexcept {
  return proven_bound(platform.cpus(), platform.gpus());
}

BoundCheck check_makespan_bound(double makespan, double lower_bound, int cpus,
                                int gpus, const WatchdogOptions& options) {
  BoundCheck check;
  check.shape = platform_shape(cpus, gpus);
  check.bound = proven_bound(cpus, gpus);
  check.makespan = makespan;
  check.lower_bound = lower_bound;
  check.advisory = options.dag;
  if (lower_bound > 0.0) {
    check.ratio = makespan / lower_bound;
    check.violated = check.ratio > check.bound * (1.0 + options.tolerance);
  }
  if (check.violated && options.sink != nullptr) {
    options.sink->on_event({.time = makespan,
                            .kind = EventKind::kBoundViolation,
                            .value = check.ratio});
  }
  return check;
}

BoundCheck check_makespan_bound(double makespan, double lower_bound,
                                const Platform& platform,
                                const WatchdogOptions& options) {
  return check_makespan_bound(makespan, lower_bound, platform.cpus(),
                              platform.gpus(), options);
}

BoundCheck check_schedule_bound(const Schedule& schedule, double lower_bound,
                                const Platform& platform,
                                const WatchdogOptions& options) {
  return check_makespan_bound(schedule.makespan(), lower_bound, platform,
                              options);
}

std::string describe(const BoundCheck& check) {
  std::ostringstream oss;
  oss << "makespan/lower-bound ratio " << util::format_double(check.ratio, 4)
      << (check.violated ? " EXCEEDS " : " <= ")
      << util::format_double(check.bound, 4) << " (shape "
      << shape_name(check.shape) << ')';
  if (check.advisory) oss << " [advisory: DAG run, theorem covers independent tasks]";
  return oss.str();
}

}  // namespace hp::obs
