#include "obs/watchdog.hpp"

#include <cmath>
#include <sstream>

#include "util/table.hpp"
#include "worstcase/instances.hpp"

namespace hp::obs {

const char* shape_name(PlatformShape shape) noexcept {
  switch (shape) {
    case PlatformShape::kSingleSingle: return "1+1";
    case PlatformShape::kManyPlusOne: return "m+1";
    case PlatformShape::kGeneral: return "m+n";
    case PlatformShape::kHomogeneous: return "homogeneous";
  }
  return "?";
}

PlatformShape platform_shape(const Platform& platform) noexcept {
  const int m = platform.cpus();
  const int n = platform.gpus();
  if (m == 0 || n == 0) return PlatformShape::kHomogeneous;
  if (m == 1 && n == 1) return PlatformShape::kSingleSingle;
  if (m == 1 || n == 1) return PlatformShape::kManyPlusOne;
  return PlatformShape::kGeneral;
}

double proven_bound(const Platform& platform) noexcept {
  switch (platform_shape(platform)) {
    case PlatformShape::kSingleSingle: return kPhi;            // Theorem 7
    case PlatformShape::kManyPlusOne: return 1.0 + kPhi;       // Theorem 9
    case PlatformShape::kGeneral: return 2.0 + std::sqrt(2.0); // Theorem 12
    case PlatformShape::kHomogeneous:
      // One resource class: HeteroPrio degenerates to list scheduling,
      // Graham's (2 - 1/w) bound applies.
      return 2.0 - 1.0 / platform.workers();
  }
  return 2.0 + std::sqrt(2.0);
}

BoundCheck check_makespan_bound(double makespan, double lower_bound,
                                const Platform& platform,
                                const WatchdogOptions& options) {
  BoundCheck check;
  check.shape = platform_shape(platform);
  check.bound = proven_bound(platform);
  check.makespan = makespan;
  check.lower_bound = lower_bound;
  check.advisory = options.dag;
  if (lower_bound > 0.0) {
    check.ratio = makespan / lower_bound;
    check.violated = check.ratio > check.bound * (1.0 + options.tolerance);
  }
  if (check.violated && options.sink != nullptr) {
    options.sink->on_event({.time = makespan,
                            .kind = EventKind::kBoundViolation,
                            .value = check.ratio});
  }
  return check;
}

BoundCheck check_schedule_bound(const Schedule& schedule, double lower_bound,
                                const Platform& platform,
                                const WatchdogOptions& options) {
  return check_makespan_bound(schedule.makespan(), lower_bound, platform,
                              options);
}

std::string describe(const BoundCheck& check) {
  std::ostringstream oss;
  oss << "makespan/lower-bound ratio " << util::format_double(check.ratio, 4)
      << (check.violated ? " EXCEEDS " : " <= ")
      << util::format_double(check.bound, 4) << " (shape "
      << shape_name(check.shape) << ')';
  if (check.advisory) oss << " [advisory: DAG run, theorem covers independent tasks]";
  return oss.str();
}

}  // namespace hp::obs
