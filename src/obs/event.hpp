#pragma once
// Typed scheduler events — the core of the observability layer.
//
// Schedulers emit Events into an EventSink as decisions happen: a task
// becomes ready, starts, completes, is aborted by spoliation; an idle scan
// is attempted, skipped or commits a victim; the ready-queue depth changes;
// a worker enters or leaves an idle interval; the bound watchdog detects a
// makespan above the paper's proven approximation ratio.
//
// The hot-path contract is zero overhead when disabled: schedulers emit
// through a Probe, a pointer-sized wrapper whose emit methods reduce to a
// single null test (and compile to nothing entirely under -DHP_OBS_OFF).
// sim::TimelineLog implements EventSink, so the pre-existing human-readable
// log is one sink among others rather than a parallel mechanism.

#include <cstdint>

#include "model/platform.hpp"
#include "model/task.hpp"

namespace hp::obs {

enum class EventKind : std::uint8_t {
  kReady,            ///< task entered the ready queue
  kStart,            ///< task started on `worker`
  kComplete,         ///< task completed on `worker`
  kAbort,            ///< task's partial execution on `worker` was killed
  kSpoliateAttempt,  ///< idle `worker` scanned the other resource for a victim
  kSpoliateSkip,     ///< scan skipped outright (other resource fully idle)
  kSpoliateCommit,   ///< `worker` stole `task` from `victim`
  kQueueDepth,       ///< ready-queue depth sample; depth in `value`
  kIdleBegin,        ///< `worker` became idle
  kIdleEnd,          ///< `worker` got work; idle-interval length in `value`
  kBoundViolation,   ///< makespan/lower-bound ratio in `value` exceeds the
                     ///< proven bound for the platform shape
  kWorkerCrash,      ///< `worker` permanently lost (fault injection)
  kWorkerSlowBegin,  ///< `worker` entered a straggler window; slowdown factor
                     ///< in `value`
  kWorkerSlowEnd,    ///< `worker` left a straggler window
  kTaskFail,         ///< an attempt of `task` on `worker` aborted with an
                     ///< injected fault; 0-based attempt index in `value`
  kTaskRetry,        ///< `task` re-entered the ready queue after a failed
                     ///< attempt; 0-based index of the new attempt in `value`
  kRunDegraded,      ///< run ended with unfinished tasks; count in `value`
  // Online runtime kinds (src/online/). Appended so recorded streams from
  // earlier versions keep their numeric kinds.
  kTaskArrival,       ///< `task` arrived in the online runtime
  kTaskShed,          ///< admission control rejected `task` (never scheduled)
  kTaskDeferred,      ///< admission control parked `task` for later re-admission
  kDeadlineMiss,      ///< `task` had no completion at its deadline instant
  kReplan,            ///< incremental re-prioritization of the ready frontier;
                      ///< number of frontier inserts in `value`
  kRescheduleTick,    ///< rolling-horizon tick fired; 0-based index in `value`
  kModeChange,        ///< runtime mode transition; new Mode as 0/1/2 in `value`
  kStragglerRespawn,  ///< overdue `task` aborted on `worker` and re-enqueued;
                      ///< per-run respawn index in `value`
};

inline constexpr std::size_t kNumEventKinds =
    static_cast<std::size_t>(EventKind::kStragglerRespawn) + 1;

/// Printable name, e.g. "spoliate-commit".
[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

/// Inverse of event_kind_name; false if `name` is unknown.
[[nodiscard]] bool event_kind_from_name(const char* name,
                                        EventKind* out) noexcept;

/// One scheduler event. Fields not meaningful for a kind stay at their
/// defaults (task/worker/victim -1, value 0).
struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kReady;
  TaskId task = kInvalidTask;
  WorkerId worker = -1;
  WorkerId victim = -1;  ///< kSpoliateCommit: worker losing the task
  double value = 0.0;    ///< kQueueDepth: depth; kIdleEnd: idle length;
                         ///< kBoundViolation: measured ratio

  friend bool operator==(const Event&, const Event&) = default;
};

/// Consumer of scheduler events. Implementations must tolerate events
/// arriving in simulation-time order per run (monotone non-decreasing).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& event) = 0;
};

/// Forwards every event to up to two downstream sinks (scheduler sink plus
/// legacy TimelineLog, typically). Null slots are skipped.
class FanoutSink final : public EventSink {
 public:
  FanoutSink() = default;
  FanoutSink(EventSink* a, EventSink* b) : a_(a), b_(b) {}

  void on_event(const Event& event) override {
    if (a_ != nullptr) a_->on_event(event);
    if (b_ != nullptr) b_->on_event(event);
  }

 private:
  EventSink* a_ = nullptr;
  EventSink* b_ = nullptr;
};

/// The scheduler-side emitter. Holds a (possibly null) sink; every emit
/// method is a guarded single call. `if (probe)` lets callers skip even the
/// argument computation of an emit. Under -DHP_OBS_OFF all methods compile
/// to nothing, removing the null test from the hot path entirely.
class Probe {
 public:
  Probe() = default;
  explicit Probe(EventSink* sink) : sink_(sink) {}

  [[nodiscard]] explicit operator bool() const noexcept {
#ifdef HP_OBS_OFF
    return false;
#else
    return sink_ != nullptr;
#endif
  }

  void emit(const Event& event) const {
#ifdef HP_OBS_OFF
    (void)event;
#else
    if (sink_ != nullptr) sink_->on_event(event);
#endif
  }

  void ready(double t, TaskId task) const {
    emit({.time = t, .kind = EventKind::kReady, .task = task});
  }
  void start(double t, TaskId task, WorkerId w) const {
    emit({.time = t, .kind = EventKind::kStart, .task = task, .worker = w});
  }
  void complete(double t, TaskId task, WorkerId w) const {
    emit({.time = t, .kind = EventKind::kComplete, .task = task, .worker = w});
  }
  void abort(double t, TaskId task, WorkerId w) const {
    emit({.time = t, .kind = EventKind::kAbort, .task = task, .worker = w});
  }
  void spoliate_attempt(double t, WorkerId w) const {
    emit({.time = t, .kind = EventKind::kSpoliateAttempt, .worker = w});
  }
  void spoliate_skip(double t, WorkerId w) const {
    emit({.time = t, .kind = EventKind::kSpoliateSkip, .worker = w});
  }
  void spoliate_commit(double t, TaskId task, WorkerId thief,
                       WorkerId victim) const {
    emit({.time = t,
          .kind = EventKind::kSpoliateCommit,
          .task = task,
          .worker = thief,
          .victim = victim});
  }
  void queue_depth(double t, std::size_t depth) const {
    emit({.time = t,
          .kind = EventKind::kQueueDepth,
          .value = static_cast<double>(depth)});
  }
  void idle_begin(double t, WorkerId w) const {
    emit({.time = t, .kind = EventKind::kIdleBegin, .worker = w});
  }
  void idle_end(double t, WorkerId w, double idle_length) const {
    emit({.time = t,
          .kind = EventKind::kIdleEnd,
          .worker = w,
          .value = idle_length});
  }
  void bound_violation(double t, double ratio) const {
    emit({.time = t, .kind = EventKind::kBoundViolation, .value = ratio});
  }
  void worker_crash(double t, WorkerId w) const {
    emit({.time = t, .kind = EventKind::kWorkerCrash, .worker = w});
  }
  void worker_slow_begin(double t, WorkerId w, double slowdown) const {
    emit({.time = t,
          .kind = EventKind::kWorkerSlowBegin,
          .worker = w,
          .value = slowdown});
  }
  void worker_slow_end(double t, WorkerId w) const {
    emit({.time = t, .kind = EventKind::kWorkerSlowEnd, .worker = w});
  }
  void task_fail(double t, TaskId task, WorkerId w, int attempt) const {
    emit({.time = t,
          .kind = EventKind::kTaskFail,
          .task = task,
          .worker = w,
          .value = static_cast<double>(attempt)});
  }
  void task_retry(double t, TaskId task, int attempt) const {
    emit({.time = t,
          .kind = EventKind::kTaskRetry,
          .task = task,
          .value = static_cast<double>(attempt)});
  }
  void run_degraded(double t, std::size_t unfinished) const {
    emit({.time = t,
          .kind = EventKind::kRunDegraded,
          .value = static_cast<double>(unfinished)});
  }
  void task_arrival(double t, TaskId task) const {
    emit({.time = t, .kind = EventKind::kTaskArrival, .task = task});
  }
  void task_shed(double t, TaskId task) const {
    emit({.time = t, .kind = EventKind::kTaskShed, .task = task});
  }
  void task_deferred(double t, TaskId task) const {
    emit({.time = t, .kind = EventKind::kTaskDeferred, .task = task});
  }
  void deadline_miss(double t, TaskId task) const {
    emit({.time = t, .kind = EventKind::kDeadlineMiss, .task = task});
  }
  void replan(double t, std::size_t frontier_inserts) const {
    emit({.time = t,
          .kind = EventKind::kReplan,
          .value = static_cast<double>(frontier_inserts)});
  }
  void reschedule_tick(double t, std::size_t index) const {
    emit({.time = t,
          .kind = EventKind::kRescheduleTick,
          .value = static_cast<double>(index)});
  }
  void mode_change(double t, int new_mode) const {
    emit({.time = t,
          .kind = EventKind::kModeChange,
          .value = static_cast<double>(new_mode)});
  }
  void straggler_respawn(double t, TaskId task, WorkerId w, int index) const {
    emit({.time = t,
          .kind = EventKind::kStragglerRespawn,
          .task = task,
          .worker = w,
          .value = static_cast<double>(index)});
  }

 private:
  EventSink* sink_ = nullptr;
};

}  // namespace hp::obs
