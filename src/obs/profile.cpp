#include "obs/profile.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace hp::obs {

namespace {

constexpr std::size_t idx(Phase phase) noexcept {
  return static_cast<std::size_t>(phase);
}

/// Durations span sub-microsecond scope bodies to whole-run seconds;
/// [2^0, 2^36) ns covers 1 ns .. ~69 s with underflow/overflow guards.
constexpr HistogramConfig kDurationConfig{.min_exp = 0,
                                          .max_exp = 36,
                                          .sub_bits = 5};

}  // namespace

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kEngine: return "engine";
    case Phase::kKeyBuild: return "key_build";
    case Phase::kSort: return "sort";
    case Phase::kDispatch: return "dispatch";
    case Phase::kReadyUpdate: return "ready_update";
    case Phase::kSpoliationScan: return "spoliation_scan";
    case Phase::kHeftRank: return "heft_rank";
    case Phase::kHeftGapSearch: return "heft_gap_search";
    case Phase::kDualHpBisection: return "dualhp_bisection";
  }
  return "unknown";
}

MetricsCollector::MetricsCollector(MetricClock* clock)
    : clock_(clock != nullptr ? clock : &owned_clock_) {
  histograms_.reserve(kNumPhases);
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    histograms_.emplace_back(kDurationConfig);
  }
  // Per-item phases sample; per-run phases are always timed.
  for (const Phase phase :
       {Phase::kDispatch, Phase::kReadyUpdate, Phase::kSpoliationScan,
        Phase::kHeftGapSearch, Phase::kDualHpBisection}) {
    shift_[idx(phase)] = kDefaultSampleShift;
  }
}

void MetricsCollector::set_sample_shift(Phase phase, unsigned shift) {
  shift_[idx(phase)] = static_cast<std::uint8_t>(std::min(shift, 31u));
}

unsigned MetricsCollector::sample_shift(Phase phase) const noexcept {
  return shift_[idx(phase)];
}

void MetricsCollector::record_sample(Phase phase, std::uint64_t elapsed_ns) {
  PhaseStats& st = stats_[idx(phase)];
  ++st.sampled;
  st.sampled_ns += elapsed_ns;
  histograms_[idx(phase)].record(static_cast<double>(elapsed_ns));
  add_path(path_stack_[std::min(depth_, kMaxDepth)], elapsed_ns);
}

void MetricsCollector::add_path(std::uint64_t key,
                                std::uint64_t elapsed_ns) {
  for (PathTotal& path : paths_) {
    if (path.key == key) {
      path.sampled_ns += elapsed_ns;
      return;
    }
  }
  paths_.push_back({key, elapsed_ns});
}

void MetricsCollector::decode_path(std::uint64_t key,
                                   std::vector<Phase>* out) {
  out->clear();
  while (key != 0) {
    out->push_back(static_cast<Phase>((key & 0xF) - 1));
    key >>= 4;
  }
  std::reverse(out->begin(), out->end());  // root first
}

const PhaseStats& MetricsCollector::stats(Phase phase) const noexcept {
  return stats_[idx(phase)];
}

const Histogram& MetricsCollector::phase_histogram(
    Phase phase) const noexcept {
  return histograms_[idx(phase)];
}

void MetricsCollector::merge(const MetricsCollector& other) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    stats_[i].calls += other.stats_[i].calls;
    stats_[i].sampled += other.stats_[i].sampled;
    stats_[i].sampled_ns += other.stats_[i].sampled_ns;
    histograms_[i].merge(other.histograms_[i]);
  }
  for (const PathTotal& path : other.paths_) {
    add_path(path.key, path.sampled_ns);
  }
}

void MetricsCollector::export_to(MetricsRegistry* registry) const {
  assert(registry != nullptr);
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const PhaseStats& st = stats_[i];
    if (st.calls == 0) continue;
    const std::string base =
        std::string("phase_") + phase_name(static_cast<Phase>(i));
    registry->counter(base + "_calls") += static_cast<double>(st.calls);
    registry->counter(base + "_sampled") += static_cast<double>(st.sampled);
    double& total = registry->gauge(base + "_total_ns");
    total = std::max(total, st.scaled_total_ns());
    registry->histogram(base + "_ns", kDurationConfig)
        .merge(histograms_[i]);
  }
}

}  // namespace hp::obs
