#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace hp::obs {

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (!is_object()) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse_document(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) return fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue* out) {
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = JsonValue(true);
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = JsonValue(false);
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = JsonValue();
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    if (!consume('{')) return false;
    JsonObject object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      *out = JsonValue(std::move(object));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (!consume('}')) return false;
    *out = JsonValue(std::move(object));
    return true;
  }

  bool parse_array(JsonValue* out) {
    if (!consume('[')) return false;
    JsonArray array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      *out = JsonValue(std::move(array));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      array.push_back(std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (!consume(']')) return false;
    *out = JsonValue(std::move(array));
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // \uXXXX: decode the code unit; non-ASCII becomes '?' (the
            // exporters only ever emit ASCII, this is for robustness).
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return fail("bad \\u escape");
            out->push_back(code < 128 ? static_cast<char>(code) : '?');
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    *out = JsonValue(value);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text, error);
  return parser.parse_document(out);
}

}  // namespace hp::obs
