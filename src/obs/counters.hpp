#pragma once
// Counter/gauge registry derived from an event stream.
//
// SchedulerCounters is the fixed set of counters the evaluation cares about
// (§6.2 reasons about idle time, spoliation behaviour and queue pressure);
// CounterRegistry is the generic named view used by the CLI report and the
// bench JSON, so new counters can be surfaced without touching consumers.

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hpp"

namespace hp::obs {

/// Aggregate counters of one scheduler run, derived from its event stream.
struct SchedulerCounters {
  long long tasks_ready = 0;
  long long tasks_completed = 0;
  long long spoliation_attempts = 0;  ///< idle scans that looked for a victim
  long long spoliation_commits = 0;   ///< scans that stole a task
  long long spoliation_skips = 0;     ///< scans skipped (no possible victim)
  long long aborts = 0;               ///< partial executions killed
  long long bound_violations = 0;     ///< watchdog exceedance events
  long long peak_ready_depth = 0;     ///< max ready-queue depth sample
  long long idle_intervals = 0;       ///< completed idle intervals (kIdleEnd)
  long long worker_crashes = 0;       ///< workers permanently lost
  long long straggler_windows = 0;    ///< straggler windows opened
  long long task_failures = 0;        ///< attempts aborted by injected faults
  long long task_retries = 0;         ///< re-enqueues after failed attempts
  long long degraded_runs = 0;        ///< kRunDegraded events (0 or 1 per run)
  long long tasks_arrived = 0;        ///< online arrivals (kTaskArrival)
  long long tasks_shed = 0;           ///< rejected by admission control
  long long tasks_deferred = 0;       ///< parked by admission control
  long long deadline_misses = 0;      ///< tasks incomplete at their deadline
  long long replans = 0;              ///< incremental frontier re-prioritizations
  long long reschedule_ticks = 0;     ///< rolling-horizon ticks fired
  long long mode_changes = 0;         ///< degraded-mode state transitions
  long long straggler_respawns = 0;   ///< overdue tasks aborted and re-enqueued
  double busy_time[2] = {0.0, 0.0};     ///< completed work per resource type
  double aborted_time[2] = {0.0, 0.0};  ///< work lost to spoliation
  double idle_fraction[2] = {0.0, 0.0};  ///< idle / (count * makespan);
                                         ///< aborted work counts as idle,
                                         ///< matching ScheduleMetrics
  double makespan = 0.0;  ///< latest event time

  friend bool operator==(const SchedulerCounters&,
                         const SchedulerCounters&) = default;
};

/// Derive all counters from a run's events. Start/complete/abort pairing is
/// per worker; the stream must be a single run's (time-ordered, balanced).
[[nodiscard]] SchedulerCounters counters_from_events(
    std::span<const Event> events, const Platform& platform);

/// Ordered name -> value registry (insertion order preserved, so reports
/// are stable). Values are doubles; integral counters print without
/// decimals.
class CounterRegistry {
 public:
  /// Set `name` to `value`, creating it if needed.
  void set(const std::string& name, double value);
  /// Add `delta` to `name` (creates at 0 first).
  void incr(const std::string& name, double delta = 1.0);
  /// Value of `name`, or 0 if absent.
  [[nodiscard]] double get(const std::string& name) const noexcept;
  [[nodiscard]] bool contains(const std::string& name) const noexcept;

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& entries()
      const noexcept {
    return entries_;
  }

  /// Two-column text table ("counter  value") for terminal reports.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

/// Registry view of the fixed counters (names are the glossary of
/// docs/observability.md: "spoliation_attempts", "cpu_idle_fraction", ...).
[[nodiscard]] CounterRegistry registry_from(const SchedulerCounters& counters);

}  // namespace hp::obs
