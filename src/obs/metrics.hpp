#pragma once
// Metrics containers: counters, gauges and log-linear (HDR-style)
// histograms, collected in an insertion-ordered MetricsRegistry.
//
// Built for the single-writer hot path: Histogram::record() is a handful of
// integer operations on a fixed-size bucket array — no allocation, no
// locking, no atomics. Aggregation across writers is explicit: each thread
// owns its instance and merge() combines them once a parallel engine lands
// (ROADMAP item 2). That split keeps today's serial engines free of
// synchronization cost while fixing the API the parallel engine will use.
//
// Bucket layout and error bound. A histogram covers [2^min_exp, 2^max_exp)
// with S = 2^sub_bits linearly spaced sub-buckets per power of two, plus an
// underflow bucket (values < 2^min_exp, non-positive and NaN values
// included) and an overflow bucket (values >= 2^max_exp). Within the
// bucket [lo, hi) the width is lo/S at most, so hi <= lo * (1 + 1/S).
// quantile(q) reports the *upper bound* of the bucket holding rank
// ceil(q * count), clamped to the exact observed [min, max]: for an exact
// q-th percentile x of in-range samples, the reported value r satisfies
//
//     x <= r <= x * (1 + 1/S)        (relative error <= 2^-sub_bits,
//                                     3.125% at the default sub_bits = 5)
//
// count/sum/min/max/mean are exact regardless of bucketing.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace hp::obs {

struct HistogramConfig {
  int min_exp = -20;  ///< values below 2^min_exp land in the underflow bucket
  int max_exp = 36;   ///< values >= 2^max_exp land in the overflow bucket
  int sub_bits = 5;   ///< 2^sub_bits linear sub-buckets per power of two

  friend bool operator==(const HistogramConfig&,
                         const HistogramConfig&) = default;
};

/// Log-linear histogram with exact count/sum/min/max. Single-writer;
/// merge() combines instances from different writers.
class Histogram {
 public:
  explicit Histogram(const HistogramConfig& config = {});

  void record(double value) noexcept {
    ++buckets_[index_of(value)];
    ++count_;
    sum_ += value;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Add `other`'s samples. Both histograms must share a config.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Exact smallest/largest recorded value; 0 when empty.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Upper bound of the bucket holding rank ceil(q * count), clamped to the
  /// observed [min, max] (see the error bound above). 0 when empty; q is
  /// clamped to [0, 1].
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] const HistogramConfig& config() const noexcept {
    return config_;
  }
  /// Buckets including underflow ([0]) and overflow (last).
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i];
  }
  /// Exclusive upper bound of bucket `i`: 2^min_exp for the underflow
  /// bucket, +infinity for the overflow bucket.
  [[nodiscard]] double bucket_upper(std::size_t i) const noexcept;

 private:
  [[nodiscard]] std::size_t index_of(double value) const noexcept;

  HistogramConfig config_;
  int sub_count_ = 0;  ///< 2^sub_bits
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;  ///< +inf sentinel while empty, see min()
  double max_ = 0.0;
};

/// Insertion-ordered collection of named metrics. References returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime
/// (entries live in deques), so hot paths can look a metric up once and
/// write through the reference.
///
/// merge() semantics per family: counters add, gauges keep the maximum
/// (they record peaks: depths, high waters), histograms merge.
class MetricsRegistry {
 public:
  /// Find-or-create; counters start at 0 and only ever increase.
  [[nodiscard]] double& counter(std::string_view name);
  /// Find-or-create; gauges hold a last-written value.
  [[nodiscard]] double& gauge(std::string_view name);
  /// Find-or-create; `config` applies only on creation.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     const HistogramConfig& config = {});

  [[nodiscard]] const double* find_counter(std::string_view name) const;
  [[nodiscard]] const double* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  struct NamedValue {
    std::string name;
    double value = 0.0;
  };
  struct NamedHistogram {
    std::string name;
    Histogram histogram;
    NamedHistogram(std::string n, const HistogramConfig& config)
        : name(std::move(n)), histogram(config) {}
  };

  [[nodiscard]] const std::deque<NamedValue>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::deque<NamedValue>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::deque<NamedHistogram>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Fold `other` in: counters add, gauges take the max, histograms merge
  /// (created here on demand with `other`'s config).
  void merge(const MetricsRegistry& other);

 private:
  std::deque<NamedValue> counters_;
  std::deque<NamedValue> gauges_;
  std::deque<NamedHistogram> histograms_;
};

}  // namespace hp::obs
