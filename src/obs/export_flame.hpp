#pragma once
// Collapsed-stack flamegraph export of a MetricsCollector's phase paths.
//
// The output is the classic Brendan Gregg "folded" format — one line per
// call path, frames joined by ';', a space, then an integer weight:
//
//     engine;sort 48213
//     engine;dispatch 1520044
//
// which loads directly in speedscope (import as "collapsed stacks"), in
// inferno/flamegraph.pl, and in anything else that reads folded stacks.
//
// Weights are *self* nanoseconds per path: each path's sampled time is
// scaled up by its leaf phase's sampling ratio, then the scaled time of
// its direct children is subtracted (clamped at zero — children are
// sampled independently, so the estimate can overshoot the parent's).

#include <string>

#include "obs/profile.hpp"

namespace hp::obs {

/// Render `collector`'s aggregated call paths as folded stacks. Paths with
/// zero self-weight after rounding are dropped; the result is "" when
/// nothing was sampled.
[[nodiscard]] std::string collapsed_stacks(const MetricsCollector& collector);

}  // namespace hp::obs
