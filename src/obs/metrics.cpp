#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace hp::obs {

Histogram::Histogram(const HistogramConfig& config)
    : config_(config),
      sub_count_(1 << config.sub_bits),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  assert(config.max_exp > config.min_exp);
  assert(config.sub_bits >= 0 && config.sub_bits <= 12);
  const std::size_t spans =
      static_cast<std::size_t>(config.max_exp - config.min_exp);
  buckets_.assign(spans * static_cast<std::size_t>(sub_count_) + 2, 0);
}

std::size_t Histogram::index_of(double value) const noexcept {
  // Non-positive values and NaN have no exponent; they count in the
  // underflow bucket and are still exact in sum/min/max.
  if (!(value > 0.0)) return 0;
  int exp2 = 0;
  const double mantissa = std::frexp(value, &exp2);  // value = m * 2^e,
  const int exp = exp2 - 1;                          // m in [0.5, 1)
  if (exp < config_.min_exp) return 0;
  if (exp >= config_.max_exp) return buckets_.size() - 1;
  // value / 2^exp = 2m in [1, 2): linear position within the power of two.
  int sub = static_cast<int>((mantissa * 2.0 - 1.0) *
                             static_cast<double>(sub_count_));
  sub = std::clamp(sub, 0, sub_count_ - 1);
  return 1 +
         static_cast<std::size_t>(exp - config_.min_exp) *
             static_cast<std::size_t>(sub_count_) +
         static_cast<std::size_t>(sub);
}

double Histogram::bucket_upper(std::size_t i) const noexcept {
  if (i == 0) return std::ldexp(1.0, config_.min_exp);
  if (i == buckets_.size() - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t linear = i - 1;
  const int exp =
      config_.min_exp + static_cast<int>(linear / static_cast<std::size_t>(
                                                      sub_count_));
  const auto sub = static_cast<double>(linear %
                                       static_cast<std::size_t>(sub_count_));
  return std::ldexp(1.0 + (sub + 1.0) / static_cast<double>(sub_count_), exp);
}

double Histogram::min() const noexcept { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::clamp(bucket_upper(i), min_, max_);
  }
  return max_;  // unreachable: bucket counts sum to count_
}

void Histogram::merge(const Histogram& other) {
  assert(config_ == other.config_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

double* find_or_create(std::deque<MetricsRegistry::NamedValue>& family,
                       std::string_view name) {
  for (auto& entry : family) {
    if (entry.name == name) return &entry.value;
  }
  family.push_back({std::string(name), 0.0});
  return &family.back().value;
}

const double* find_in(const std::deque<MetricsRegistry::NamedValue>& family,
                      std::string_view name) {
  for (const auto& entry : family) {
    if (entry.name == name) return &entry.value;
  }
  return nullptr;
}

}  // namespace

double& MetricsRegistry::counter(std::string_view name) {
  return *find_or_create(counters_, name);
}

double& MetricsRegistry::gauge(std::string_view name) {
  return *find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const HistogramConfig& config) {
  for (auto& entry : histograms_) {
    if (entry.name == name) return entry.histogram;
  }
  histograms_.emplace_back(std::string(name), config);
  return histograms_.back().histogram;
}

const double* MetricsRegistry::find_counter(std::string_view name) const {
  return find_in(counters_, name);
}

const double* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_in(gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  for (const auto& entry : histograms_) {
    if (entry.name == name) return &entry.histogram;
  }
  return nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& entry : other.counters_) {
    counter(entry.name) += entry.value;
  }
  for (const auto& entry : other.gauges_) {
    double& mine = gauge(entry.name);
    mine = std::max(mine, entry.value);
  }
  for (const auto& entry : other.histograms_) {
    histogram(entry.name, entry.histogram.config()).merge(entry.histogram);
  }
}

}  // namespace hp::obs
