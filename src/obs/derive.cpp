#include "obs/derive.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace hp::obs {

void derive_metrics(std::span<const Event> events, const Platform& platform,
                    MetricsRegistry* registry) {
  assert(registry != nullptr);
  const HistogramConfig config = sim_time_histogram_config();
  Histogram& queue_wait = registry->histogram("queue_wait", config);
  Histogram& task_duration = registry->histogram("task_duration", config);
  Histogram& idle_interval = registry->histogram("idle_interval", config);

  const auto workers = static_cast<std::size_t>(platform.workers());
  constexpr double kNone = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> open(workers, kNone);   // running start per worker
  std::vector<double> busy(workers, 0.0);     // completed busy per worker

  // Latest ready instant per task (a retry re-arms it); NaN once consumed.
  std::vector<double> ready_at;
  const auto ready_slot = [&](TaskId task) -> double* {
    if (task < 0) return nullptr;
    const auto i = static_cast<std::size_t>(task);
    if (i >= ready_at.size()) ready_at.resize(i + 1, kNone);
    return &ready_at[i];
  };

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kReady:
      case EventKind::kTaskRetry:
        if (double* slot = ready_slot(e.task)) *slot = e.time;
        break;
      case EventKind::kStart: {
        if (double* slot = ready_slot(e.task); slot && !std::isnan(*slot)) {
          queue_wait.record(e.time - *slot);
          *slot = kNone;
        }
        if (e.worker >= 0) open[static_cast<std::size_t>(e.worker)] = e.time;
        break;
      }
      case EventKind::kComplete:
      case EventKind::kAbort: {
        if (e.worker < 0) break;
        double& started = open[static_cast<std::size_t>(e.worker)];
        if (std::isnan(started)) break;  // unpaired (merged/partial stream)
        if (e.kind == EventKind::kComplete) {
          task_duration.record(e.time - started);
          busy[static_cast<std::size_t>(e.worker)] += e.time - started;
        }
        started = kNone;
        break;
      }
      case EventKind::kIdleEnd:
        idle_interval.record(e.value);
        break;
      default:
        break;
    }
  }

  Histogram& busy_cpu = registry->histogram("busy_time_cpu", config);
  Histogram& busy_gpu = registry->histogram("busy_time_gpu", config);
  for (std::size_t w = 0; w < workers; ++w) {
    (platform.type_of(static_cast<WorkerId>(w)) == Resource::kCpu ? busy_cpu
                                                                  : busy_gpu)
        .record(busy[w]);
  }
}

void import_counter_registry(const CounterRegistry& counters,
                             MetricsRegistry* registry) {
  assert(registry != nullptr);
  for (const auto& [name, value] : counters.entries()) {
    registry->gauge(name) = value;
  }
}

}  // namespace hp::obs
