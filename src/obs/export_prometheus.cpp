#include "obs/export_prometheus.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>

namespace hp::obs {

namespace {

bool name_start_char(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool name_char(char c) noexcept {
  return name_start_char(c) || std::isdigit(static_cast<unsigned char>(c));
}

std::string sanitize(const std::string& prefix, const std::string& name) {
  std::string out = prefix + name;
  if (out.empty()) return "_";
  if (!name_start_char(out[0])) out[0] = '_';
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (!name_char(out[i])) out[i] = '_';
  }
  return out;
}

std::string number(double value) {
  std::ostringstream oss;
  oss.precision(12);
  oss << value;
  return oss.str();
}

void append_family(std::ostringstream& out, const std::string& name,
                   const char* type, const char* help) {
  out << "# HELP " << name << ' ' << help << '\n';
  out << "# TYPE " << name << ' ' << type << '\n';
}

void append_histogram(std::ostringstream& out, const std::string& name,
                      const Histogram& hist,
                      const std::vector<double>& quantiles) {
  append_family(out, name, "histogram",
                "log-linear histogram (see docs/observability.md)");
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i + 1 < hist.num_buckets(); ++i) {
    if (hist.bucket_count(i) == 0) continue;
    cumulative += hist.bucket_count(i);
    out << name << "_bucket{le=\"" << number(hist.bucket_upper(i)) << "\"} "
        << cumulative << '\n';
  }
  out << name << "_bucket{le=\"+Inf\"} " << hist.count() << '\n';
  out << name << "_sum " << number(hist.sum()) << '\n';
  out << name << "_count " << hist.count() << '\n';

  append_family(out, name + "_quantile", "gauge",
                "bucket-upper-bound quantile estimates");
  for (const double q : quantiles) {
    out << name << "_quantile{quantile=\"" << number(q) << "\"} "
        << number(hist.quantile(q)) << '\n';
  }
  append_family(out, name + "_max", "gauge", "exact observed maximum");
  out << name << "_max " << number(hist.max()) << '\n';
}

}  // namespace

std::string prometheus_text(const MetricsRegistry& registry,
                            const PrometheusOptions& options) {
  std::ostringstream out;
  for (const auto& entry : registry.counters()) {
    const std::string name = sanitize(options.prefix, entry.name);
    append_family(out, name, "counter", "scheduler counter");
    out << name << ' ' << number(entry.value) << '\n';
  }
  for (const auto& entry : registry.gauges()) {
    const std::string name = sanitize(options.prefix, entry.name);
    append_family(out, name, "gauge", "scheduler gauge");
    out << name << ' ' << number(entry.value) << '\n';
  }
  for (const auto& entry : registry.histograms()) {
    append_histogram(out, sanitize(options.prefix, entry.name),
                     entry.histogram, options.quantiles);
  }
  return out.str();
}

namespace {

/// Splits a sample line into name / optional labels / value, validating
/// each part. Returns false with `*why` set on malformed lines.
bool check_sample_line(const std::string& line,
                       const std::map<std::string, std::string>& types,
                       std::string* family_out, std::string* why) {
  std::size_t at = 0;
  if (at >= line.size() || !name_start_char(line[at])) {
    *why = "sample does not start with a metric name";
    return false;
  }
  while (at < line.size() && name_char(line[at])) ++at;
  const std::string name = line.substr(0, at);

  if (at < line.size() && line[at] == '{') {
    const std::size_t close = line.find('}', at);
    if (close == std::string::npos) {
      *why = "unterminated label set";
      return false;
    }
    // Labels: key="value"[,key="value"]*; empty label sets are legal.
    std::string labels = line.substr(at + 1, close - at - 1);
    while (!labels.empty()) {
      const std::size_t eq = labels.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= labels.size() ||
          labels[eq + 1] != '"') {
        *why = "malformed label in " + name;
        return false;
      }
      const std::size_t endq = labels.find('"', eq + 2);
      if (endq == std::string::npos) {
        *why = "unterminated label value in " + name;
        return false;
      }
      std::size_t next = endq + 1;
      if (next < labels.size()) {
        if (labels[next] != ',') {
          *why = "expected ',' between labels in " + name;
          return false;
        }
        ++next;
      }
      labels.erase(0, next);
    }
    at = close + 1;
  }

  if (at >= line.size() || (line[at] != ' ' && line[at] != '\t')) {
    *why = "no value after metric name " + name;
    return false;
  }
  while (at < line.size() && (line[at] == ' ' || line[at] == '\t')) ++at;
  const std::string value = line.substr(at);
  if (value != "+Inf" && value != "-Inf" && value != "NaN") {
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      *why = "unparsable value '" + value + "' for " + name;
      return false;
    }
  }

  // A histogram family declares `f` and emits f_bucket/f_sum/f_count.
  std::string family = name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (family.size() > s.size() &&
        family.compare(family.size() - s.size(), s.size(), s) == 0) {
      const std::string base = family.substr(0, family.size() - s.size());
      const auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") {
        family = base;
        break;
      }
    }
  }
  *family_out = family;
  return true;
}

}  // namespace

bool validate_prometheus_text(const std::string& text, std::string* error) {
  const auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };

  std::map<std::string, std::string> types;  // family -> declared type
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name, rest;
      comment >> hash >> keyword >> name;
      if (keyword == "TYPE") {
        comment >> rest;
        if (rest != "counter" && rest != "gauge" && rest != "histogram" &&
            rest != "summary" && rest != "untyped") {
          return fail(line_no, "unknown TYPE '" + rest + "'");
        }
        if (name.empty()) return fail(line_no, "TYPE without a name");
        types[name] = rest;
      } else if (keyword != "HELP") {
        return fail(line_no, "comment is neither HELP nor TYPE");
      }
      continue;
    }
    std::string family, why;
    if (!check_sample_line(line, types, &family, &why)) {
      return fail(line_no, why);
    }
    if (types.find(family) == types.end()) {
      return fail(line_no, "sample for undeclared family '" + family + "'");
    }
    ++samples;
  }
  if (samples == 0) return fail(line_no, "document has no samples");
  return true;
}

}  // namespace hp::obs
