#include "obs/export_csv.hpp"

#include <cstdlib>
#include <limits>
#include <sstream>

namespace hp::obs {

namespace {

constexpr const char* kHeader = "time,kind,task,worker,victim,value";

/// Shortest decimal form that parses back to the same double.
std::string exact_double(double value) {
  std::ostringstream oss;
  oss.precision(std::numeric_limits<double>::max_digits10);
  oss << value;
  return oss.str();
}

/// Split one CSV line at commas (no field in this format ever contains a
/// comma or quote, so no RFC 4180 unescaping is needed).
std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

std::string csv_from_events(std::span<const Event> events) {
  std::ostringstream oss;
  oss << kHeader << '\n';
  for (const Event& e : events) {
    oss << exact_double(e.time) << ',' << event_kind_name(e.kind) << ','
        << e.task << ',' << e.worker << ',' << e.victim << ','
        << exact_double(e.value) << '\n';
  }
  return oss.str();
}

bool events_from_csv(const std::string& text, std::vector<Event>* out,
                     std::string* error) {
  out->clear();
  std::istringstream iss(text);
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + message;
    }
    return false;
  };

  while (std::getline(iss, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_no == 1) {
      if (line != kHeader) return fail("unexpected header '" + line + "'");
      continue;
    }
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_line(line);
    if (fields.size() != 6) {
      return fail("expected 6 fields, got " + std::to_string(fields.size()));
    }
    Event e;
    char* end = nullptr;
    e.time = std::strtod(fields[0].c_str(), &end);
    if (end != fields[0].c_str() + fields[0].size()) return fail("bad time");
    if (!event_kind_from_name(fields[1].c_str(), &e.kind)) {
      return fail("unknown kind '" + fields[1] + "'");
    }
    e.task = static_cast<TaskId>(std::strtol(fields[2].c_str(), &end, 10));
    if (end != fields[2].c_str() + fields[2].size()) return fail("bad task");
    e.worker = static_cast<WorkerId>(std::strtol(fields[3].c_str(), &end, 10));
    if (end != fields[3].c_str() + fields[3].size()) return fail("bad worker");
    e.victim = static_cast<WorkerId>(std::strtol(fields[4].c_str(), &end, 10));
    if (end != fields[4].c_str() + fields[4].size()) return fail("bad victim");
    e.value = std::strtod(fields[5].c_str(), &end);
    if (end != fields[5].c_str() + fields[5].size()) return fail("bad value");
    out->push_back(e);
  }
  if (line_no == 0) return fail("empty document");
  return true;
}

}  // namespace hp::obs
