#pragma once
// CSV timeseries exporter for scheduler event streams, with an exact
// round-trip parser (times and values are written with max_digits10
// significant digits, so emit -> parse -> emit is the identity).
//
// Columns: time,kind,task,worker,victim,value — one row per event, in
// stream order. This is the plotting/diffing companion of the Chrome
// exporter: trivially loadable in pandas/gnuplot, and the format the
// round-trip tests rely on.

#include <span>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace hp::obs {

/// Render `events` as a CSV document (header + one row per event).
[[nodiscard]] std::string csv_from_events(std::span<const Event> events);

/// Parse a document produced by csv_from_events. On failure returns false
/// and explains (with line number) in `*error`.
bool events_from_csv(const std::string& text, std::vector<Event>* out,
                     std::string* error);

}  // namespace hp::obs
