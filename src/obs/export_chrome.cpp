#include "obs/export_chrome.hpp"

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace hp::obs {

namespace {

/// Slice/marker label for a task-carrying event.
std::string task_label(TaskId task, std::span<const Task> tasks) {
  if (task >= 0 && static_cast<std::size_t>(task) < tasks.size()) {
    return kernel_name(tasks[static_cast<std::size_t>(task)].kind);
  }
  return "task " + std::to_string(task);
}

}  // namespace

std::string chrome_trace_from_events(std::span<const Event> events,
                                     const Platform& platform,
                                     std::span<const Task> tasks,
                                     const ChromeTraceOptions& options) {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) oss << ',';
    first = false;
  };
  auto ts = [&](double t) { return util::format_double(t * options.time_scale, 3); };

  // Open execution per worker, for pairing starts with completes/aborts.
  struct OpenSlice {
    TaskId task = kInvalidTask;
    double start = 0.0;
  };
  std::vector<OpenSlice> open(static_cast<std::size_t>(platform.workers()));

  // Running-set size per resource, sampled on every change.
  int running[2] = {0, 0};
  auto emit_running = [&](double time, Resource r) {
    if (!options.counter_tracks) return;
    sep();
    oss << "{\"name\":\"running_"
        << (r == Resource::kCpu ? "cpu" : "gpu")
        << "\",\"cat\":\"counters\",\"ph\":\"C\",\"pid\":0,\"ts\":"
        << ts(time) << ",\"args\":{\"running\":"
        << running[static_cast<std::size_t>(r)] << "}}";
  };

  auto emit_slice = [&](const Event& e, const OpenSlice& slice, bool aborted) {
    sep();
    oss << "{\"name\":\"" << task_label(slice.task, tasks)
        << (aborted ? " (aborted)" : "") << "\",\"cat\":\""
        << (aborted ? "aborted" : "task") << "\",\"ph\":\"X\",\"pid\":0,"
        << "\"tid\":" << e.worker << ",\"ts\":" << ts(slice.start)
        << ",\"dur\":" << ts(e.time - slice.start) << ",\"args\":{\"task\":"
        << slice.task << "}}";
  };
  auto emit_instant = [&](const Event& e, const char* name,
                          const char* cat = "spoliation") {
    sep();
    oss << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
        << "\",\"ph\":\"i\","
        << "\"s\":\"t\",\"pid\":0,\"tid\":" << e.worker
        << ",\"ts\":" << ts(e.time) << ",\"args\":{\"task\":" << e.task;
    if (e.victim >= 0) oss << ",\"victim\":" << e.victim;
    oss << "}}";
  };

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kStart:
        if (e.worker >= 0) {
          open[static_cast<std::size_t>(e.worker)] = {e.task, e.time};
          const Resource r = platform.type_of(e.worker);
          ++running[static_cast<std::size_t>(r)];
          emit_running(e.time, r);
        }
        break;
      case EventKind::kComplete:
      case EventKind::kAbort: {
        if (e.worker < 0) break;
        OpenSlice& slice = open[static_cast<std::size_t>(e.worker)];
        if (slice.task == kInvalidTask) break;  // unpaired
        emit_slice(e, slice, e.kind == EventKind::kAbort);
        slice = OpenSlice{};
        const Resource r = platform.type_of(e.worker);
        --running[static_cast<std::size_t>(r)];
        emit_running(e.time, r);
        break;
      }
      case EventKind::kSpoliateCommit:
        emit_instant(e, "spoliate-commit");
        break;
      case EventKind::kSpoliateAttempt:
        if (options.attempt_markers) emit_instant(e, "spoliate-attempt");
        break;
      case EventKind::kSpoliateSkip:
        if (options.attempt_markers) emit_instant(e, "spoliate-skip");
        break;
      case EventKind::kQueueDepth:
        if (options.counter_tracks) {
          sep();
          oss << "{\"name\":\"ready_queue_depth\",\"cat\":\"counters\","
              << "\"ph\":\"C\",\"pid\":0,\"ts\":" << ts(e.time)
              << ",\"args\":{\"depth\":"
              << util::format_double(e.value, 0) << "}}";
        }
        break;
      case EventKind::kBoundViolation:
        sep();
        oss << "{\"name\":\"bound-violation\",\"cat\":\"watchdog\","
            << "\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"ts\":" << ts(e.time)
            << ",\"args\":{\"ratio\":" << util::format_double(e.value, 6)
            << "}}";
        break;
      case EventKind::kWorkerCrash:
        emit_instant(e, "worker-crash", "fault");
        break;
      case EventKind::kTaskFail:
        emit_instant(e, "task-fail", "fault");
        break;
      case EventKind::kTaskRetry:
        emit_instant(e, "task-retry", "fault");
        break;
      case EventKind::kWorkerSlowBegin:
      case EventKind::kWorkerSlowEnd: {
        // Straggler windows render as an on/off counter track per worker so
        // the slowdown span is visible against the worker's slices.
        sep();
        oss << "{\"name\":\"slowdown_w" << e.worker
            << "\",\"cat\":\"fault\",\"ph\":\"C\",\"pid\":0,\"ts\":"
            << ts(e.time) << ",\"args\":{\"factor\":"
            << util::format_double(
                   e.kind == EventKind::kWorkerSlowBegin ? e.value : 0.0, 3)
            << "}}";
        break;
      }
      case EventKind::kRunDegraded:
        sep();
        oss << "{\"name\":\"run-degraded\",\"cat\":\"fault\",\"ph\":\"i\","
            << "\"s\":\"g\",\"pid\":0,\"ts\":" << ts(e.time)
            << ",\"args\":{\"unfinished\":" << util::format_double(e.value, 0)
            << "}}";
        break;
      case EventKind::kTaskShed:
        emit_instant(e, "task-shed", "online");
        break;
      case EventKind::kTaskDeferred:
        emit_instant(e, "task-deferred", "online");
        break;
      case EventKind::kDeadlineMiss:
        emit_instant(e, "deadline-miss", "online");
        break;
      case EventKind::kStragglerRespawn:
        emit_instant(e, "straggler-respawn", "online");
        break;
      case EventKind::kReplan:
        sep();
        oss << "{\"name\":\"replan\",\"cat\":\"online\",\"ph\":\"i\","
            << "\"s\":\"g\",\"pid\":0,\"ts\":" << ts(e.time)
            << ",\"args\":{\"inserts\":" << util::format_double(e.value, 0)
            << "}}";
        break;
      case EventKind::kRescheduleTick:
        sep();
        oss << "{\"name\":\"reschedule-tick\",\"cat\":\"online\",\"ph\":\"i\","
            << "\"s\":\"g\",\"pid\":0,\"ts\":" << ts(e.time)
            << ",\"args\":{\"index\":" << util::format_double(e.value, 0)
            << "}}";
        break;
      case EventKind::kModeChange:
        // The degraded-mode state machine renders as a 0/1/2 counter track
        // (healthy/degraded/shedding) so mode spans line up with the
        // arrival/shed markers above.
        sep();
        oss << "{\"name\":\"runtime_mode\",\"cat\":\"online\",\"ph\":\"C\","
            << "\"pid\":0,\"ts\":" << ts(e.time) << ",\"args\":{\"mode\":"
            << util::format_double(e.value, 0) << "}}";
        break;
      case EventKind::kTaskArrival:
      case EventKind::kReady:
      case EventKind::kIdleBegin:
      case EventKind::kIdleEnd:
        // Lifecyle details that would only add noise as trace entries; the
        // CSV exporter and the counters carry them.
        break;
    }
  }

  // One named track per worker.
  for (WorkerId w = 0; w < platform.workers(); ++w) {
    sep();
    oss << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << w
        << ",\"args\":{\"name\":\"" << resource_name(platform.type_of(w))
        << ' ' << w << "\"}}";
  }

  // One metadata record rolling up the run's registries, so the trace
  // carries the same numbers the Prometheus exposition serves.
  if (options.counters != nullptr || options.metrics != nullptr) {
    sep();
    oss << "{\"name\":\"hp_metrics_rollup\",\"ph\":\"M\",\"pid\":0,"
        << "\"args\":{";
    bool first_arg = true;
    auto arg_sep = [&] {
      if (!first_arg) oss << ',';
      first_arg = false;
    };
    if (options.counters != nullptr) {
      for (const auto& [name, value] : options.counters->entries()) {
        arg_sep();
        oss << '"' << name << "\":" << util::format_double(value, 6);
      }
    }
    if (options.metrics != nullptr) {
      for (const auto& entry : options.metrics->histograms()) {
        const Histogram& h = entry.histogram;
        arg_sep();
        oss << '"' << entry.name << "\":{\"count\":" << h.count()
            << ",\"p50\":" << util::format_double(h.quantile(0.5), 6)
            << ",\"p90\":" << util::format_double(h.quantile(0.9), 6)
            << ",\"p99\":" << util::format_double(h.quantile(0.99), 6)
            << ",\"max\":" << util::format_double(h.max(), 6) << '}';
      }
    }
    oss << "}}";
  }
  oss << "]}";
  return oss.str();
}

bool validate_chrome_trace(const std::string& json_text,
                           const std::optional<Platform>& platform,
                           std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  JsonValue doc;
  std::string parse_error;
  if (!json_parse(json_text, &doc, &parse_error)) {
    return fail("not valid JSON: " + parse_error);
  }
  if (!doc.is_object()) return fail("document is not an object");
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("missing traceEvents array");
  }

  std::multiset<double> named_tids;  // tids carrying a thread_name meta
  std::size_t index = 0;
  for (const JsonValue& entry : events->as_array()) {
    const std::string where = "traceEvents[" + std::to_string(index++) + "]";
    if (!entry.is_object()) return fail(where + " is not an object");
    const JsonValue* name = entry.find("name");
    const JsonValue* ph = entry.find("ph");
    if (name == nullptr || !name->is_string()) {
      return fail(where + " has no string name");
    }
    if (ph == nullptr || !ph->is_string() || ph->as_string().size() != 1) {
      return fail(where + " has no phase");
    }
    const char phase = ph->as_string()[0];
    const JsonValue* ts_field = entry.find("ts");
    if (phase != 'M' && (ts_field == nullptr || !ts_field->is_number())) {
      return fail(where + " has no numeric ts");
    }
    if (phase == 'X') {
      const JsonValue* dur = entry.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->as_number() < 0.0) {
        return fail(where + " X slice has no non-negative dur");
      }
      const JsonValue* tid = entry.find("tid");
      if (tid == nullptr || !tid->is_number()) {
        return fail(where + " X slice has no tid");
      }
    }
    if (phase == 'M' && name->as_string() == "thread_name") {
      const JsonValue* tid = entry.find("tid");
      const JsonValue* args = entry.find("args");
      if (tid == nullptr || !tid->is_number()) {
        return fail(where + " thread_name has no tid");
      }
      if (args == nullptr || args->find("name") == nullptr) {
        return fail(where + " thread_name has no args.name");
      }
      named_tids.insert(tid->as_number());
    }
  }

  if (platform.has_value()) {
    for (WorkerId w = 0; w < platform->workers(); ++w) {
      const auto count = named_tids.count(static_cast<double>(w));
      if (count != 1) {
        return fail("worker " + std::to_string(w) + " has " +
                    std::to_string(count) + " thread_name records, want 1");
      }
    }
  }
  return true;
}

}  // namespace hp::obs
