#pragma once
// Synthesize an event stream from a finished Schedule.
//
// The dynamic schedulers (HeteroPrio) emit events natively as decisions
// happen; static planners (HEFT, DualHP, DualDP, the online rules) only
// produce the Schedule artifact. replay_schedule() reconstructs the
// time-ordered ready/start/abort/spoliate-commit/complete stream from the
// placements and aborted segments, so every scheduler in the library feeds
// the same exporters and counters.

#include <span>
#include <vector>

#include "model/platform.hpp"
#include "obs/event.hpp"
#include "sched/schedule.hpp"

namespace hp::obs {

/// Event stream of `schedule`, sorted by time (ties: aborts and completes
/// before starts, then task id, so per-worker slices pair correctly). A
/// spoliated task contributes an abort on the victim worker and a
/// spoliate-commit on the worker of its final placement. Each distinct
/// instant ends with a kQueueDepth sample of its peak ready depth (carry
/// plus the tasks launched at the instant), so replayed plans feed the
/// same counter tracks as natively instrumented runs.
[[nodiscard]] std::vector<Event> replay_schedule(const Schedule& schedule,
                                                 const Platform& platform);

/// Convenience: replay into a sink (no-op when `sink` is null).
void replay_schedule_to(const Schedule& schedule, const Platform& platform,
                        EventSink* sink);

}  // namespace hp::obs
