#include "model/task_soa.hpp"

#include <algorithm>
#include <cstring>

#if defined(__SSE2__) && !defined(HP_NO_SIMD)
#include <emmintrin.h>
#define HP_SOA_SSE2 1
#endif

namespace hp::soa {

void pack_descending_keys_scalar(std::span<const double> accel,
                                 std::span<std::uint64_t> out) noexcept {
  for (std::size_t i = 0; i < accel.size(); ++i) {
    out[i] = descending_key(accel[i]);
  }
}

#ifdef HP_SOA_SSE2
namespace {

// Branch-free SSE2 form of descending_key over two lanes. With s the sign
// bit of d and b the (-0-normalized) bit pattern:
//   descending_key(d) = s ? b : ~(b | signbit)
void pack_descending_keys_sse2(const double* accel, std::uint64_t* out,
                               std::size_t n) noexcept {
  const __m128i top = _mm_set1_epi64x(static_cast<long long>(1ull << 63));
  const __m128i ones = _mm_set1_epi32(-1);
  const __m128d zero = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d v = _mm_loadu_pd(accel + i);
    const __m128d is_zero = _mm_cmpeq_pd(v, zero);  // catches both ±0.0
    v = _mm_andnot_pd(is_zero, v);                  // normalize -0.0 → +0.0
    const __m128i bits = _mm_castpd_si128(v);
    // Broadcast each lane's sign bit to all 64 bits (SSE2 has no 64-bit
    // arithmetic shift; replicate the high dword and shift that).
    const __m128i hi = _mm_shuffle_epi32(bits, _MM_SHUFFLE(3, 3, 1, 1));
    const __m128i sign = _mm_srai_epi32(hi, 31);
    const __m128i neg_path = _mm_and_si128(sign, bits);
    const __m128i pos_path =
        _mm_andnot_si128(sign, _mm_xor_si128(_mm_or_si128(bits, top), ones));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_or_si128(neg_path, pos_path));
  }
  for (; i < n; ++i) out[i] = descending_key(accel[i]);
}

}  // namespace
#endif  // HP_SOA_SSE2

void pack_descending_keys(std::span<const double> accel,
                          std::span<std::uint64_t> out) noexcept {
#ifdef HP_SOA_SSE2
  pack_descending_keys_sse2(accel.data(), out.data(), accel.size());
#else
  pack_descending_keys_scalar(accel, out);
#endif
}

bool uniform_priority_bits(std::span<const Task> tasks) noexcept {
  // Bit compare, exactly like build_task_soa (NaN-safe, +0/-0 distinct on
  // purpose: a false negative only costs the wider element, never
  // correctness).
  const std::size_t n = tasks.size();
  std::uint64_t first_bits = 0;
  if (n != 0) std::memcpy(&first_bits, &tasks[0].priority, sizeof first_bits);
  for (std::size_t i = 1; i < n; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &tasks[i].priority, sizeof bits);
    if (bits != first_bits) return false;
  }
  return true;
}

SortKeys build_sort_keys_shard(std::span<const Task> tasks,
                               bool uniform_priority, std::uint32_t id_offset,
                               util::Arena& arena) {
  const std::size_t n = tasks.size();
  SortKeys keys;
  keys.size = n;
  keys.uniform_priority = uniform_priority;

  // Fused blockwise pass: divide into a stack block, SIMD-pack key0 over
  // it, emit the sortable elements. Block boundaries don't change the
  // result — the pack is elementwise.
  constexpr std::size_t kBlock = 512;
  double accel[kBlock];
  std::uint64_t key0[kBlock];
  if (keys.uniform_priority) {
    keys.key_id = arena.alloc<util::KeyId>(n);
    for (std::size_t base = 0; base < n; base += kBlock) {
      const std::size_t len = std::min(kBlock, n - base);
      for (std::size_t j = 0; j < len; ++j) {
        accel[j] = tasks[base + j].cpu_time / tasks[base + j].gpu_time;
      }
      pack_descending_keys({accel, len}, {key0, len});
      for (std::size_t j = 0; j < len; ++j) {
        keys.key_id[base + j] = util::KeyId{
            key0[j], static_cast<std::uint32_t>(base + j) + id_offset};
      }
    }
  } else {
    keys.key2_id = arena.alloc<util::KeyId2>(n);
    for (std::size_t base = 0; base < n; base += kBlock) {
      const std::size_t len = std::min(kBlock, n - base);
      for (std::size_t j = 0; j < len; ++j) {
        accel[j] = tasks[base + j].cpu_time / tasks[base + j].gpu_time;
      }
      pack_descending_keys({accel, len}, {key0, len});
      for (std::size_t j = 0; j < len; ++j) {
        const std::uint64_t k = ordered_key(tasks[base + j].priority);
        keys.key2_id[base + j] =
            util::KeyId2{key0[j], accel[j] >= 1.0 ? ~k : k,
                         static_cast<std::uint32_t>(base + j) + id_offset};
      }
    }
  }
  return keys;
}

SortKeys build_sort_keys(std::span<const Task> tasks, util::Arena& arena) {
  // Uniformity decides the element shape, so scan it first.
  return build_sort_keys_shard(tasks, uniform_priority_bits(tasks), 0, arena);
}

TaskSoA build_task_soa(std::span<const Task> tasks, util::Arena& arena) {
  const std::size_t n = tasks.size();
  double* cpu = arena.alloc<double>(n);
  double* gpu = arena.alloc<double>(n);
  double* accel = arena.alloc<double>(n);
  double* priority = arena.alloc<double>(n);
  auto* key0 = arena.alloc<std::uint64_t>(n);
  auto* key1 = arena.alloc<std::uint64_t>(n);

  // De-interleave the AoS records once; every later pass is contiguous.
  for (std::size_t i = 0; i < n; ++i) {
    cpu[i] = tasks[i].cpu_time;
    gpu[i] = tasks[i].gpu_time;
    priority[i] = tasks[i].priority;
  }
  for (std::size_t i = 0; i < n; ++i) accel[i] = cpu[i] / gpu[i];

  pack_descending_keys({accel, n}, {key0, n});

  bool uniform = true;
  if (n != 0) {
    std::uint64_t first_bits;
    std::memcpy(&first_bits, &priority[0], sizeof first_bits);
    for (std::size_t i = 1; i < n; ++i) {
      std::uint64_t bits;
      std::memcpy(&bits, &priority[i], sizeof bits);
      if (bits != first_bits) {
        uniform = false;
        break;
      }
    }
  }

  // key1 direction flips with rho >= 1 (§2.2). Within a key0 tie group rho
  // is bit-identical, so the direction agrees across the group and the
  // packed compare matches the reference comparator.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = ordered_key(priority[i]);
    key1[i] = accel[i] >= 1.0 ? ~k : k;
  }

  TaskSoA soa;
  soa.cpu = {cpu, n};
  soa.gpu = {gpu, n};
  soa.accel = {accel, n};
  soa.priority = {priority, n};
  soa.key0 = {key0, n};
  soa.key1 = {key1, n};
  soa.uniform_priority = uniform;
  return soa;
}

}  // namespace hp::soa
