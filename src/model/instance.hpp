#pragma once
// An instance of the independent-task scheduling problem: a named set of
// tasks. TaskIds index into the task vector.

#include <span>
#include <string>
#include <vector>

#include "model/task.hpp"

namespace hp {

/// A set of independent tasks (the paper's instance I).
class Instance {
 public:
  Instance() = default;
  explicit Instance(std::string name) : name_(std::move(name)) {}
  Instance(std::string name, std::vector<Task> tasks)
      : name_(std::move(name)), tasks_(std::move(tasks)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Append a task; returns its id.
  TaskId add(Task task) {
    tasks_.push_back(task);
    return static_cast<TaskId>(tasks_.size() - 1);
  }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

  [[nodiscard]] const Task& operator[](TaskId id) const noexcept {
    return tasks_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] Task& operator[](TaskId id) noexcept {
    return tasks_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::span<const Task> tasks() const noexcept { return tasks_; }
  [[nodiscard]] std::span<Task> tasks() noexcept { return tasks_; }

  /// Sum of p_i over all tasks.
  [[nodiscard]] double total_cpu_work() const noexcept;
  /// Sum of q_i over all tasks.
  [[nodiscard]] double total_gpu_work() const noexcept;
  /// max over tasks of min(p_i, q_i): a lower bound on any makespan.
  [[nodiscard]] double max_min_time() const noexcept;

 private:
  std::string name_;
  std::vector<Task> tasks_;
};

}  // namespace hp
