#pragma once
// Task model of the paper (§4.1).
//
// A task T_i has a processing time p_i on a CPU and q_i on a GPU; its
// acceleration factor is rho_i = p_i / q_i (may be < 1 when the CPU is
// faster). Tasks additionally carry an offline priority used for
// tie-breaking (§2.2 and §6.2) and a kernel kind for reporting.

#include <cstdint>
#include <string>

namespace hp {

using TaskId = std::int32_t;
constexpr TaskId kInvalidTask = -1;

/// Kernel kinds of the linear-algebra workloads plus a generic kind.
/// Only used for reporting; scheduling decisions never look at the kind.
enum class KernelKind : std::int16_t {
  kGeneric = 0,
  // Cholesky
  kPotrf,
  kTrsm,
  kSyrk,
  kGemm,
  // QR (flat tree)
  kGeqrt,
  kOrmqr,
  kTsqrt,
  kTsmqr,
  // LU (incremental, PLASMA-style)
  kGetrf,
  kGessm,
  kTstrf,
  kSsssm,
  // QR, binary reduction tree (triangle-on-top-of-triangle kernels)
  kTtqrt,
  kTtmqr,
  // Fast multipole method (the workload HeteroPrio was designed for, §1)
  kP2M,
  kM2M,
  kM2L,
  kL2L,
  kL2P,
  kP2P,
};

/// Number of kernel kinds (for table sizing).
inline constexpr std::size_t kNumKernelKinds =
    static_cast<std::size_t>(KernelKind::kP2P) + 1;

/// Printable name of a kernel kind (e.g. "DGEMM").
[[nodiscard]] const char* kernel_name(KernelKind kind) noexcept;

/// Inverse of kernel_name: returns kGeneric for unknown names.
[[nodiscard]] KernelKind kernel_kind_from_name(const std::string& name) noexcept;

/// One schedulable task.
struct Task {
  double cpu_time = 0.0;  ///< p_i: processing time on one CPU core
  double gpu_time = 0.0;  ///< q_i: processing time on one GPU
  double priority = 0.0;  ///< offline priority, higher = more urgent
  KernelKind kind = KernelKind::kGeneric;

  /// Acceleration factor rho_i = p_i / q_i.
  [[nodiscard]] double accel() const noexcept { return cpu_time / gpu_time; }

  /// min(p_i, q_i): a lower bound on any schedule containing this task.
  [[nodiscard]] double min_time() const noexcept {
    return cpu_time < gpu_time ? cpu_time : gpu_time;
  }

  /// max(p_i, q_i).
  [[nodiscard]] double max_time() const noexcept {
    return cpu_time > gpu_time ? cpu_time : gpu_time;
  }
};

}  // namespace hp
