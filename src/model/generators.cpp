#include "model/generators.hpp"

namespace hp {

Instance uniform_instance(const UniformGenParams& params, util::Rng& rng) {
  Instance inst("uniform");
  for (std::size_t i = 0; i < params.num_tasks; ++i) {
    Task t;
    t.cpu_time = rng.uniform(params.cpu_time_lo, params.cpu_time_hi);
    const double accel = rng.uniform(params.accel_lo, params.accel_hi);
    t.gpu_time = t.cpu_time / accel;
    inst.add(t);
  }
  return inst;
}

Instance bimodal_instance(std::size_t num_tasks, double gpu_friendly_fraction,
                          util::Rng& rng) {
  Instance inst("bimodal");
  for (std::size_t i = 0; i < num_tasks; ++i) {
    Task t;
    t.cpu_time = rng.uniform(1.0, 20.0);
    const bool gpu_friendly = rng.uniform01() < gpu_friendly_fraction;
    const double accel =
        gpu_friendly ? rng.uniform(10.0, 30.0) : rng.uniform(0.3, 2.0);
    t.gpu_time = t.cpu_time / accel;
    inst.add(t);
  }
  return inst;
}

Instance uniform_accel_instance(std::size_t num_tasks, double accel,
                                double cpu_time_lo, double cpu_time_hi,
                                util::Rng& rng) {
  Instance inst("uniform-accel");
  for (std::size_t i = 0; i < num_tasks; ++i) {
    Task t;
    t.cpu_time = rng.uniform(cpu_time_lo, cpu_time_hi);
    t.gpu_time = t.cpu_time / accel;
    inst.add(t);
  }
  return inst;
}

std::vector<double> poisson_arrival_times(std::size_t num_tasks, double rate,
                                          util::Rng& rng) {
  std::vector<double> times(num_tasks, 0.0);
  if (rate <= 0.0) return times;
  double clock = 0.0;
  for (std::size_t i = 0; i < num_tasks; ++i) {
    clock += rng.exponential(rate);
    times[i] = clock;
  }
  return times;
}

}  // namespace hp
