#include "model/instance.hpp"

#include <algorithm>

namespace hp {

double Instance::total_cpu_work() const noexcept {
  double sum = 0.0;
  for (const Task& t : tasks_) sum += t.cpu_time;
  return sum;
}

double Instance::total_gpu_work() const noexcept {
  double sum = 0.0;
  for (const Task& t : tasks_) sum += t.gpu_time;
  return sum;
}

double Instance::max_min_time() const noexcept {
  double best = 0.0;
  for (const Task& t : tasks_) best = std::max(best, t.min_time());
  return best;
}

}  // namespace hp
