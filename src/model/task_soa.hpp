#pragma once
// Structure-of-arrays task layout for the scheduling hot paths.
//
// The engines decide with four scalars per task (p_i, q_i, rho_i, priority),
// but the AoS `Task` record interleaves them, so every pass over the ready
// set drags the whole 32-byte struct through the cache and re-derives the
// division p/q per comparison. `TaskSoA` splits the records into parallel
// flat arrays (durations, acceleration, priority) built in one batched pass
// from a per-run arena, and additionally materializes the *ready-queue order*
// as packed 64-bit integer keys so sorting and queue maintenance compare
// plain integers instead of branching over two doubles.
//
// Key packing. `ordered_key` maps a non-NaN double to a u64 whose unsigned
// order equals the double order (sign bit flipped for positives, all bits
// flipped for negatives; -0.0 normalized to +0.0 first so bitwise equality
// matches `==`). Then
//     key0 = ~ordered_key(rho)        — non-increasing acceleration
//     key1 = rho >= 1 ? ~ordered_key(priority) : ordered_key(priority)
// reproduces the §2.2 queue comparator exactly: key1 only matters when key0
// ties, and a key0 tie means bit-identical rho, hence the same >= 1 branch
// on both sides. The final id tie-break comes from sort stability (or an
// explicit id compare).

#include <bit>
#include <cstdint>
#include <span>

#include "model/platform.hpp"
#include "model/task.hpp"
#include "util/arena.hpp"
#include "util/key_sort.hpp"

namespace hp::soa {

/// Monotone u64 image of a double: for non-NaN a, b
///     a < b   iff  ordered_key(a) < ordered_key(b)
///     a == b  iff  ordered_key(a) == ordered_key(b)   (+0.0 == -0.0 holds)
[[nodiscard]] inline std::uint64_t ordered_key(double d) noexcept {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(d == 0.0 ? 0.0 : d);
  constexpr std::uint64_t kSign = std::uint64_t{1} << 63;
  return (bits & kSign) != 0 ? ~bits : bits | kSign;
}

/// Key that sorts doubles in descending order when compared ascending.
[[nodiscard]] inline std::uint64_t descending_key(double d) noexcept {
  return ~ordered_key(d);
}

/// Parallel flat arrays over one task set, all arena-backed. Spans stay
/// valid until the arena is rewound past the build point (one run).
struct TaskSoA {
  std::span<const double> cpu;       ///< p_i
  std::span<const double> gpu;       ///< q_i
  std::span<const double> accel;     ///< rho_i = p_i / q_i
  std::span<const double> priority;  ///< offline priority
  /// Packed ready-order keys: ascending (key0, key1, id) order is exactly
  /// the §2.2 queue order (GPU end first).
  std::span<const std::uint64_t> key0;
  std::span<const std::uint64_t> key1;
  /// All priorities bitwise equal (the common generator output): key1 is
  /// then constant within every key0 tie group, so single-key sorts with a
  /// stable id tie-break reproduce the full order.
  bool uniform_priority = false;

  [[nodiscard]] std::size_t size() const noexcept { return cpu.size(); }

  [[nodiscard]] double time_on(TaskId t, Resource r) const noexcept {
    const auto i = static_cast<std::size_t>(t);
    return r == Resource::kCpu ? cpu[i] : gpu[i];
  }
};

/// Split `tasks` into arena-backed parallel arrays and compute the packed
/// ready keys in batched passes over contiguous spans.
[[nodiscard]] TaskSoA build_task_soa(std::span<const Task> tasks,
                                     util::Arena& arena);

/// Just the ready-order sort keys, one element per task, ids preloaded with
/// the task index. The independent fast path never reads the flat duration
/// arrays (it gathers from the AoS records in queue order instead), so this
/// skips them entirely: one fused blockwise pass over the AoS computes
/// rho = p/q, packs key0 (SIMD), and emits sortable elements directly —
/// roughly half the memory traffic of build_task_soa + a separate key copy.
/// The key arithmetic is bit-identical to build_task_soa's.
struct SortKeys {
  util::KeyId* key_id = nullptr;    ///< uniform priorities: (key0, id)
  util::KeyId2* key2_id = nullptr;  ///< varying: (key0, key1, id)
  std::size_t size = 0;
  bool uniform_priority = true;     ///< selects which array is populated
};

[[nodiscard]] SortKeys build_sort_keys(std::span<const Task> tasks,
                                       util::Arena& arena);

/// The bitwise priority-uniformity scan build_sort_keys applies to its whole
/// span. Exposed so the parallel sharded build (src/par) can make the
/// element-shape decision globally before fanning the per-shard key packs
/// out — shards must agree or their sorted runs could not be merged.
[[nodiscard]] bool uniform_priority_bits(std::span<const Task> tasks) noexcept;

/// build_sort_keys with the element shape forced and `id_offset` added to
/// the preloaded ids, so a shard-local span emits global task ids. The key
/// arithmetic is bit-identical to build_sort_keys; calling it with
/// uniform = uniform_priority_bits(tasks) and id_offset = 0 is the same
/// function.
[[nodiscard]] SortKeys build_sort_keys_shard(std::span<const Task> tasks,
                                             bool uniform_priority,
                                             std::uint32_t id_offset,
                                             util::Arena& arena);

/// Batched key0 pack: out[i] = descending_key(accel[i]). Exposed separately
/// for the SIMD micro-benchmark; uses the SSE2 path when it is compiled in.
void pack_descending_keys(std::span<const double> accel,
                          std::span<std::uint64_t> out) noexcept;

/// Scalar reference for pack_descending_keys (micro-benchmark baseline).
void pack_descending_keys_scalar(std::span<const double> accel,
                                 std::span<std::uint64_t> out) noexcept;

}  // namespace hp::soa
