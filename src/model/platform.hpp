#pragma once
// Platform model: m CPU workers and n GPU workers (§4.1).
//
// Workers are numbered 0..m-1 (CPUs) then m..m+n-1 (GPUs). All workers of a
// type are identical; the two types are unrelated (a task's time depends on
// the type only).

#include <cassert>
#include <cstdint>

#include "model/task.hpp"

namespace hp {

using WorkerId = std::int32_t;

enum class Resource : std::uint8_t { kCpu = 0, kGpu = 1 };

/// The other resource type.
[[nodiscard]] constexpr Resource other(Resource r) noexcept {
  return r == Resource::kCpu ? Resource::kGpu : Resource::kCpu;
}

[[nodiscard]] const char* resource_name(Resource r) noexcept;

/// An (m CPUs, n GPUs) node.
class Platform {
 public:
  Platform(int num_cpus, int num_gpus) : m_(num_cpus), n_(num_gpus) {
    assert(num_cpus >= 0 && num_gpus >= 0 && num_cpus + num_gpus > 0);
  }

  [[nodiscard]] int cpus() const noexcept { return m_; }
  [[nodiscard]] int gpus() const noexcept { return n_; }
  [[nodiscard]] int workers() const noexcept { return m_ + n_; }

  /// Number of workers of the given type.
  [[nodiscard]] int count(Resource r) const noexcept {
    return r == Resource::kCpu ? m_ : n_;
  }

  [[nodiscard]] Resource type_of(WorkerId w) const noexcept {
    assert(w >= 0 && w < workers());
    return w < m_ ? Resource::kCpu : Resource::kGpu;
  }

  /// First worker id of the given type.
  [[nodiscard]] WorkerId first(Resource r) const noexcept {
    return r == Resource::kCpu ? 0 : m_;
  }

  /// Processing time of `task` on a worker of type `r`.
  [[nodiscard]] static double time_on(const Task& task, Resource r) noexcept {
    return r == Resource::kCpu ? task.cpu_time : task.gpu_time;
  }

  friend bool operator==(const Platform&, const Platform&) = default;

 private:
  int m_;
  int n_;
};

}  // namespace hp
