#include "model/platform.hpp"

namespace hp {

const char* resource_name(Resource r) noexcept {
  return r == Resource::kCpu ? "CPU" : "GPU";
}

}  // namespace hp
