#pragma once
// Random instance generators for tests and overhead benches.
//
// These are *not* the paper's workloads (those come from src/linalg); they
// provide controlled random instances for property tests (approximation-
// ratio sweeps against the exact optimum) and for measuring scheduler
// overhead at scale.

#include <cstdint>
#include <vector>

#include "model/instance.hpp"
#include "util/rng.hpp"

namespace hp {

/// Parameters of the uniform random generator.
struct UniformGenParams {
  std::size_t num_tasks = 16;
  double cpu_time_lo = 0.5;   ///< p_i ~ U[cpu_time_lo, cpu_time_hi]
  double cpu_time_hi = 10.0;
  double accel_lo = 0.2;      ///< rho_i ~ U[accel_lo, accel_hi]; q_i = p_i/rho_i
  double accel_hi = 30.0;
};

/// Tasks with uniform CPU times and uniform acceleration factors.
[[nodiscard]] Instance uniform_instance(const UniformGenParams& params,
                                        util::Rng& rng);

/// A "bimodal" instance mimicking mixed kernels: a fraction of tasks is
/// strongly GPU-friendly (rho in [10, 30]), the rest CPU-friendly
/// (rho in [0.3, 2]). Exercises the affinity-based split.
[[nodiscard]] Instance bimodal_instance(std::size_t num_tasks,
                                        double gpu_friendly_fraction,
                                        util::Rng& rng);

/// Instance where all tasks have the same acceleration factor (the two
/// resource types become uniformly related). Useful for edge-case tests.
[[nodiscard]] Instance uniform_accel_instance(std::size_t num_tasks,
                                              double accel, double cpu_time_lo,
                                              double cpu_time_hi, util::Rng& rng);

/// Non-decreasing arrival instants of a Poisson process with the given
/// `rate` (mean arrivals per time unit): cumulative sums of exponential
/// interarrival gaps. rate <= 0 means "all at once" and returns all-zero
/// times. One task, one instant, in task-id order — the online runtime's
/// arrival streams (src/online/arrival.hpp) are drawn through this.
[[nodiscard]] std::vector<double> poisson_arrival_times(std::size_t num_tasks,
                                                        double rate,
                                                        util::Rng& rng);

}  // namespace hp
