#include "model/task.hpp"

namespace hp {

KernelKind kernel_kind_from_name(const std::string& name) noexcept {
  for (std::size_t k = 0; k < kNumKernelKinds; ++k) {
    const auto kind = static_cast<KernelKind>(k);
    if (name == kernel_name(kind)) return kind;
  }
  return KernelKind::kGeneric;
}

const char* kernel_name(KernelKind kind) noexcept {
  switch (kind) {
    case KernelKind::kGeneric: return "TASK";
    case KernelKind::kPotrf: return "DPOTRF";
    case KernelKind::kTrsm: return "DTRSM";
    case KernelKind::kSyrk: return "DSYRK";
    case KernelKind::kGemm: return "DGEMM";
    case KernelKind::kGeqrt: return "DGEQRT";
    case KernelKind::kOrmqr: return "DORMQR";
    case KernelKind::kTsqrt: return "DTSQRT";
    case KernelKind::kTsmqr: return "DTSMQR";
    case KernelKind::kGetrf: return "DGETRF";
    case KernelKind::kGessm: return "DGESSM";
    case KernelKind::kTstrf: return "DTSTRF";
    case KernelKind::kSsssm: return "DSSSSM";
    case KernelKind::kTtqrt: return "DTTQRT";
    case KernelKind::kTtmqr: return "DTTMQR";
    case KernelKind::kP2M: return "P2M";
    case KernelKind::kM2M: return "M2M";
    case KernelKind::kM2L: return "M2L";
    case KernelKind::kL2L: return "L2L";
    case KernelKind::kL2P: return "L2P";
    case KernelKind::kP2P: return "P2P";
  }
  return "?";
}

}  // namespace hp
