#include "multi/heteroprio_k.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace hp::multi {

namespace {

struct Running {
  TaskId task = kInvalidTask;
  double start = 0.0;
  double finish = 0.0;
};

double time_on(const TaskK& task, TypeId t) {
  return task.time[static_cast<std::size_t>(t)];
}

bool strictly_better(double candidate, double current) {
  return candidate < current - 1e-9 * std::max(1.0, std::abs(current));
}

}  // namespace

Schedule heteroprio_k(std::span<const TaskK> tasks, const PlatformK& platform,
                      const HeteroPrioKOptions& options,
                      HeteroPrioKStats* stats) {
#ifndef NDEBUG
  for (const TaskK& t : tasks) {
    assert(static_cast<int>(t.time.size()) == platform.types());
  }
#endif
  Schedule schedule(tasks.size());
  HeteroPrioKStats local;

  // One affinity-ordered view of the ready set per type.
  struct TypeOrder {
    std::span<const TaskK> tasks;
    TypeId type;
    bool operator()(TaskId a, TaskId b) const noexcept {
      const double fa = affinity(tasks[static_cast<std::size_t>(a)], type);
      const double fb = affinity(tasks[static_cast<std::size_t>(b)], type);
      if (fa != fb) return fa > fb;
      const double pa = tasks[static_cast<std::size_t>(a)].priority;
      const double pb = tasks[static_cast<std::size_t>(b)].priority;
      if (pa != pb) return pa > pb;
      return a < b;
    }
  };
  std::vector<std::set<TaskId, TypeOrder>> views;
  for (TypeId t = 0; t < platform.types(); ++t) {
    views.emplace_back(TypeOrder{tasks, t});
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (auto& view : views) view.insert(static_cast<TaskId>(i));
  }

  std::vector<Running> running(static_cast<std::size_t>(platform.workers()));
  std::vector<std::uint64_t> generation(running.size(), 0);
  sim::EventQueue<std::pair<WorkerId, std::uint64_t>> events;
  std::size_t completed = 0;
  double now = 0.0;

  auto start_task = [&](WorkerId w, TaskId id) {
    const TypeId t = platform.type_of(w);
    auto& slot = running[static_cast<std::size_t>(w)];
    slot = Running{id, now, now + time_on(tasks[static_cast<std::size_t>(id)], t)};
    ++generation[static_cast<std::size_t>(w)];
    events.push(slot.finish, {w, generation[static_cast<std::size_t>(w)]});
  };

  auto idle_workers = [&] {
    // Descending type id, ascending worker id within a type (for
    // [CPU, GPU] platforms the GPUs are served first, as in the paper).
    std::vector<WorkerId> idle;
    for (TypeId t = platform.types() - 1; t >= 0; --t) {
      for (WorkerId w = platform.first(t); w < platform.first(t) + platform.count(t);
           ++w) {
        if (running[static_cast<std::size_t>(w)].task == kInvalidTask) {
          idle.push_back(w);
        }
      }
    }
    return idle;
  };

  auto try_spoliate = [&](WorkerId w) -> bool {
    const TypeId mine = platform.type_of(w);
    std::vector<WorkerId> victims;
    for (WorkerId v = 0; v < platform.workers(); ++v) {
      if (platform.type_of(v) != mine &&
          running[static_cast<std::size_t>(v)].task != kInvalidTask) {
        victims.push_back(v);
      }
    }
    std::sort(victims.begin(), victims.end(), [&](WorkerId a, WorkerId b) {
      const Running& ra = running[static_cast<std::size_t>(a)];
      const Running& rb = running[static_cast<std::size_t>(b)];
      if (ra.finish != rb.finish) return ra.finish > rb.finish;
      const double pa = tasks[static_cast<std::size_t>(ra.task)].priority;
      const double pb = tasks[static_cast<std::size_t>(rb.task)].priority;
      if (pa != pb) return pa > pb;
      return ra.task < rb.task;
    });
    for (WorkerId v : victims) {
      Running& slot = running[static_cast<std::size_t>(v)];
      const double dt = time_on(tasks[static_cast<std::size_t>(slot.task)], mine);
      if (!strictly_better(now + dt, slot.finish)) continue;
      schedule.add_aborted(slot.task, v, slot.start, now);
      ++generation[static_cast<std::size_t>(v)];
      ++local.spoliations;
      const TaskId stolen = slot.task;
      slot = Running{};
      start_task(w, stolen);
      return true;
    }
    return false;
  };

  auto dispatch = [&] {
    bool acted = true;
    while (acted) {
      acted = false;
      for (WorkerId w : idle_workers()) {
        if (running[static_cast<std::size_t>(w)].task != kInvalidTask) continue;
        const TypeId t = platform.type_of(w);
        auto& view = views[static_cast<std::size_t>(t)];
        if (!view.empty()) {
          const TaskId id = *view.begin();
          for (auto& other_view : views) other_view.erase(id);
          start_task(w, id);
          acted = true;
        } else if (options.enable_spoliation && try_spoliate(w)) {
          acted = true;
        }
      }
    }
  };

  dispatch();
  while (completed < tasks.size()) {
    assert(!events.empty());
    const double t = events.top().time;
    now = t;
    while (!events.empty() && events.top().time == t) {
      const auto ev = events.pop();
      const auto [w, gen] = ev.payload;
      if (gen != generation[static_cast<std::size_t>(w)]) continue;
      auto& slot = running[static_cast<std::size_t>(w)];
      if (slot.task == kInvalidTask) continue;
      schedule.place(slot.task, w, slot.start, slot.finish);
      slot = Running{};
      ++completed;
    }
    dispatch();
  }
  if (stats != nullptr) *stats = local;
  return schedule;
}

Schedule eft_k(std::span<const TaskK> tasks, const PlatformK& platform) {
  Schedule schedule(tasks.size());
  std::vector<TaskId> order(tasks.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const auto avg = [&](TaskId id) {
      const TaskK& t = tasks[static_cast<std::size_t>(id)];
      double sum = 0.0;
      for (double v : t.time) sum += v;
      return sum / static_cast<double>(t.time.size());
    };
    const double ra = avg(a);
    const double rb = avg(b);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  std::vector<double> load(static_cast<std::size_t>(platform.workers()), 0.0);
  for (TaskId id : order) {
    WorkerId best = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (WorkerId w = 0; w < platform.workers(); ++w) {
      const double finish =
          load[static_cast<std::size_t>(w)] +
          time_on(tasks[static_cast<std::size_t>(id)], platform.type_of(w));
      if (finish < best_finish) {
        best_finish = finish;
        best = w;
      }
    }
    schedule.place(id, best, load[static_cast<std::size_t>(best)], best_finish);
    load[static_cast<std::size_t>(best)] = best_finish;
  }
  return schedule;
}

double lower_bound_k(std::span<const TaskK> tasks, const PlatformK& platform) {
  if (tasks.empty()) return 0.0;
  double lb = 0.0;
  for (const TaskK& t : tasks) lb = std::max(lb, t.min_time());

  // Weak LP duality: any price vector mu >= 0 with sum_t mu_t * n_t = 1
  // yields the valid bound sum_i min_t (mu_t * time_it). Sample the simplex
  // and keep the best (converges to the fractional LP optimum from below).
  const int k = platform.types();
  util::Rng rng(0xC0FFEE);
  std::vector<double> mu(static_cast<std::size_t>(k));
  auto evaluate = [&](const std::vector<double>& prices) {
    double total = 0.0;
    for (const TaskK& t : tasks) {
      double best = std::numeric_limits<double>::infinity();
      for (int r = 0; r < k; ++r) {
        best = std::min(best,
                        prices[static_cast<std::size_t>(r)] *
                            t.time[static_cast<std::size_t>(r)]);
      }
      total += best;
    }
    return total;
  };
  auto normalize = [&](std::vector<double>& prices) {
    double denom = 0.0;
    for (int r = 0; r < k; ++r) {
      denom += prices[static_cast<std::size_t>(r)] * platform.count(r);
    }
    for (double& p : prices) p /= denom;
  };

  double best_value = 0.0;
  std::vector<double> best_mu(static_cast<std::size_t>(k),
                              1.0 / platform.workers());
  for (int sample = 0; sample < 200; ++sample) {
    for (double& p : mu) p = -std::log(std::max(1e-12, rng.uniform01()));
    normalize(mu);
    const double value = evaluate(mu);
    if (value > best_value) {
      best_value = value;
      best_mu = mu;
    }
  }
  // Local refinement around the best sample.
  for (double step : {0.5, 0.2, 0.05}) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<double> candidate = best_mu;
      const auto axis = static_cast<std::size_t>(rng.bounded(
          static_cast<std::uint64_t>(k)));
      candidate[axis] *= 1.0 + step * (rng.uniform01() - 0.5);
      normalize(candidate);
      const double value = evaluate(candidate);
      if (value > best_value) {
        best_value = value;
        best_mu = candidate;
      }
    }
  }
  return std::max(lb, best_value);
}

namespace {

struct SolverK {
  std::span<const TaskK> tasks;
  const PlatformK& platform;
  std::vector<TaskId> order;
  std::vector<double> suffix_lb;
  std::vector<double> load;
  double best = 0.0;

  void dfs(std::size_t depth, double cur_max) {
    if (cur_max >= best) return;
    if (std::max(cur_max, suffix_lb[depth]) >= best) return;
    if (depth == order.size()) {
      best = cur_max;
      return;
    }
    const TaskK& t = tasks[static_cast<std::size_t>(order[depth])];
    for (WorkerId w = 0; w < platform.workers(); ++w) {
      bool duplicate = false;
      const TypeId type = platform.type_of(w);
      for (WorkerId v = platform.first(type); v < w; ++v) {
        if (load[static_cast<std::size_t>(v)] ==
            load[static_cast<std::size_t>(w)]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      const double dt = t.time[static_cast<std::size_t>(type)];
      const double new_load = load[static_cast<std::size_t>(w)] + dt;
      if (new_load >= best) continue;
      load[static_cast<std::size_t>(w)] = new_load;
      dfs(depth + 1, std::max(cur_max, new_load));
      load[static_cast<std::size_t>(w)] = new_load - dt;
    }
  }
};

}  // namespace

double exact_optimal_k(std::span<const TaskK> tasks, const PlatformK& platform) {
  if (tasks.empty()) return 0.0;
  SolverK solver{tasks, platform, {}, {}, {}, 0.0};
  solver.order.resize(tasks.size());
  std::iota(solver.order.begin(), solver.order.end(), TaskId{0});
  std::sort(solver.order.begin(), solver.order.end(), [&](TaskId a, TaskId b) {
    const double ma = tasks[static_cast<std::size_t>(a)].min_time();
    const double mb = tasks[static_cast<std::size_t>(b)].min_time();
    if (ma != mb) return ma > mb;
    return a < b;
  });
  solver.suffix_lb.assign(tasks.size() + 1, 0.0);
  {
    std::vector<TaskK> suffix;
    for (std::size_t d = tasks.size(); d-- > 0;) {
      suffix.push_back(tasks[static_cast<std::size_t>(solver.order[d])]);
      // Cheap suffix bound: max min-time + volume over the fastest type.
      double vol = 0.0, longest = 0.0;
      for (const TaskK& t : suffix) {
        vol += t.min_time();
        longest = std::max(longest, t.min_time());
      }
      solver.suffix_lb[d] =
          std::max(longest, vol / platform.workers());
    }
  }
  solver.load.assign(static_cast<std::size_t>(platform.workers()), 0.0);
  solver.best = eft_k(tasks, platform).makespan() * (1.0 + 1e-12) + 1e-12;
  solver.dfs(0, 0.0);
  return solver.best;
}

}  // namespace hp::multi
