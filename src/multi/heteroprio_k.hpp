#pragma once
// HeteroPrio generalized to k resource types (extension; see platform_k.hpp).
//
// Each type t keeps a view of the ready tasks ordered by decreasing
// relative affinity for t (how much slower the best other type would be);
// an idle worker of type t takes the most-t-affine task. With k = 2 the two
// views are the two ends of the paper's single rho-ordered queue and the
// algorithm coincides with Algorithm 1 (verified by test_multi.cpp).
// Spoliation works as in the paper: an idle worker may restart a task
// running on any *other* type if it finishes it strictly earlier (victims
// by decreasing expected completion time, ties by priority).
//
// No approximation guarantee is proven here for k >= 3 — this is the
// natural "future work" beyond the paper; the benches measure its quality
// against the exact optimum and a greedy EFT baseline.

#include <span>

#include "multi/platform_k.hpp"
#include "sched/schedule.hpp"

namespace hp::multi {

struct HeteroPrioKOptions {
  bool enable_spoliation = true;
};

struct HeteroPrioKStats {
  int spoliations = 0;
};

/// Schedule independent k-type tasks. Every task must carry exactly
/// platform.types() times. Deterministic; idle workers are served by
/// descending type id (so with [CPU, GPU] the GPUs pick first, matching the
/// 2-type engine).
[[nodiscard]] Schedule heteroprio_k(std::span<const TaskK> tasks,
                                    const PlatformK& platform,
                                    const HeteroPrioKOptions& options = {},
                                    HeteroPrioKStats* stats = nullptr);

/// Greedy earliest-finish-time baseline: tasks by decreasing average time,
/// each on the worker finishing it first.
[[nodiscard]] Schedule eft_k(std::span<const TaskK> tasks,
                             const PlatformK& platform);

/// Exact optimum by branch and bound (small instances; tests/benches only).
[[nodiscard]] double exact_optimal_k(std::span<const TaskK> tasks,
                                     const PlatformK& platform);

/// Work-volume lower bound: max(max_i min_t time, best fractional split by
/// a water-filling argument over types — see the implementation note).
[[nodiscard]] double lower_bound_k(std::span<const TaskK> tasks,
                                   const PlatformK& platform);

}  // namespace hp::multi
