#pragma once
// k-resource-type platform — the generalization of §1's CPU+GPU node to the
// setting of Bonifaci & Wiese [10] ("scheduling unrelated machines of few
// different types"): a node with k classes of identical workers (e.g.
// CPU cores + GPUs + FPGAs/TPUs).

#include <cassert>
#include <limits>
#include <numeric>
#include <vector>

#include "model/platform.hpp"
#include "model/task.hpp"

namespace hp::multi {

using TypeId = int;

class PlatformK {
 public:
  /// counts[t] = number of workers of type t. Worker ids are contiguous by
  /// type: type 0 first.
  explicit PlatformK(std::vector<int> counts) : counts_(std::move(counts)) {
    offsets_.resize(counts_.size() + 1, 0);
    for (std::size_t t = 0; t < counts_.size(); ++t) {
      assert(counts_[t] >= 0);
      offsets_[t + 1] = offsets_[t] + counts_[t];
    }
    assert(workers() > 0);
  }

  [[nodiscard]] int types() const noexcept {
    return static_cast<int>(counts_.size());
  }
  [[nodiscard]] int count(TypeId t) const noexcept {
    return counts_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] int workers() const noexcept { return offsets_.back(); }
  [[nodiscard]] WorkerId first(TypeId t) const noexcept {
    return offsets_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] TypeId type_of(WorkerId w) const noexcept {
    assert(w >= 0 && w < workers());
    TypeId t = 0;
    while (offsets_[static_cast<std::size_t>(t) + 1] <= w) ++t;
    return t;
  }

 private:
  std::vector<int> counts_;
  std::vector<int> offsets_;
};

/// Task with one processing time per resource type.
struct TaskK {
  std::vector<double> time;  ///< time[t] on a worker of type t
  double priority = 0.0;

  [[nodiscard]] double min_time() const noexcept {
    double best = time.front();
    for (double v : time) best = std::min(best, v);
    return best;
  }
};

/// Relative affinity of a task for type t: how much slower the best *other*
/// type is. For k = 2 this is exactly the acceleration factor rho (GPU
/// side) and 1/rho (CPU side), so the k-type queue order reduces to the
/// paper's ordering.
[[nodiscard]] inline double affinity(const TaskK& task, TypeId t) noexcept {
  double best_other = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < task.time.size(); ++r) {
    if (static_cast<TypeId>(r) != t) best_other = std::min(best_other, task.time[r]);
  }
  return best_other / task.time[static_cast<std::size_t>(t)];
}

}  // namespace hp::multi
