#pragma once
// The homogeneous list-scheduling gadget of Fig 4 (the task set T2 of
// Theorem 14): 12k+1 tasks on n = 6k identical processors whose optimal
// packing has makespan n while the worst list order reaches 2n-1.

#include <vector>

namespace hp {

struct GrahamGadget {
  int k = 1;
  int machines = 6;  ///< n = 6k

  /// Durations indexed by task: six of length 2k+i for i = 0..2k-1, plus one
  /// of length 6k (last).
  std::vector<double> durations;

  /// A perfect packing: machine index per task, max load = n.
  std::vector<int> optimal_assignment;

  /// Task order whose list schedule has makespan 2n-1.
  std::vector<std::size_t> worst_order;
};

[[nodiscard]] GrahamGadget graham_gadget(int k);

/// Durations permuted into gadget.worst_order (ready to feed
/// list_schedule_homogeneous).
[[nodiscard]] std::vector<double> worst_order_durations(
    const GrahamGadget& gadget);

}  // namespace hp
