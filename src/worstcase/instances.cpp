#include "worstcase/instances.hpp"

#include <cassert>
#include <cmath>

namespace hp {

WorstCaseInstance theorem8_instance() {
  WorstCaseInstance wc;
  wc.platform = Platform(1, 1);
  wc.instance.set_name("thm8");

  // X: p = phi, q = 1. Y: p = 1, q = 1/phi. Both have rho = phi.
  // Priorities make the GPU (queue head, highest priority first for
  // rho >= 1) pick Y, leaving X to the CPU. The GPU then idles at
  // 1/phi = phi - 1 but cannot spoliate X: restarting it would finish at
  // 1/phi + 1 = phi, not better than X's CPU completion at phi.
  Task x{kPhi, 1.0, /*priority=*/1.0, KernelKind::kGeneric};
  Task y{1.0, 1.0 / kPhi, /*priority=*/2.0, KernelKind::kGeneric};
  wc.instance.add(x);
  wc.instance.add(y);

  // OPT: X on the GPU (time 1), Y on the CPU (time 1).
  wc.optimal_makespan = 1.0;
  wc.expected_hp_makespan = kPhi;
  wc.theoretical_ratio = kPhi;
  return wc;
}

WorstCaseInstance theorem11_instance(int m, int chunks) {
  assert(m >= 2 && chunks >= 1);
  WorstCaseInstance wc;
  wc.platform = Platform(m, 1);
  wc.instance.set_name("thm11-m" + std::to_string(m));

  const double x = (m - 1.0) / (m + kPhi);
  const double eps = x / chunks;  // K tasks of length eps fill [0, x]

  // T4: GPU filler, rho = phi, highest priority in the phi group so the GPU
  // drains it first. K tasks of GPU time eps keep the GPU busy until x.
  for (int c = 0; c < chunks; ++c) {
    wc.instance.add(Task{eps * kPhi, eps, /*priority=*/3.0});
  }
  // T3: CPU filler, rho = 1 (queue tail). m*K unit tasks of CPU time eps
  // keep all m CPUs busy until exactly x.
  for (int c = 0; c < m * chunks; ++c) {
    wc.instance.add(Task{eps, eps, /*priority=*/0.0});
  }
  // T1: taken by the GPU at time x (priority above T2 in the phi group).
  wc.instance.add(Task{1.0, 1.0 / kPhi, /*priority=*/2.0});
  // T2: taken by a CPU at time x; finishes at x + phi. The GPU, idle from
  // x + 1/phi, cannot improve on that (x + 1/phi + 1 = x + phi).
  wc.instance.add(Task{kPhi, 1.0, /*priority=*/1.0});

  // OPT = 1: T2 on the GPU; T1 on one CPU; T3 and T4 pack the remaining
  // m - 1 CPUs with total work x * (m + phi) = m - 1 (up to epsilon-level
  // rounding).
  wc.optimal_makespan = 1.0;
  wc.expected_hp_makespan = x + kPhi;
  wc.theoretical_ratio = 1.0 + kPhi;
  return wc;
}

double theorem14_r(int n) noexcept {
  // r^2 - 3*(2 - 1/n)*r - 3 = 0, positive root.
  const double b = 3.0 * (2.0 - 1.0 / n);
  return 0.5 * (b + std::sqrt(b * b + 12.0));
}

WorstCaseInstance theorem14_instance(int k) {
  assert(k >= 1);
  const int n = 6 * k;
  const int m = n * n;
  WorstCaseInstance wc;
  wc.platform = Platform(m, n);
  wc.instance.set_name("thm14-k" + std::to_string(k));

  const double r = theorem14_r(n);
  const double x_real = n * (static_cast<double>(m) - n) / (m + n * r);
  const double x = std::floor(x_real);  // integral phase-1 length

  // T4: GPU filler, rho = r, highest priority of the rho = r group. n*x
  // tasks of GPU time 1 keep the n GPUs busy until exactly x.
  for (int c = 0; c < n * static_cast<int>(x); ++c) {
    wc.instance.add(Task{r, 1.0, /*priority=*/100.0});
  }
  // T3: CPU filler, rho = 1 (queue tail). m*x unit tasks.
  for (int c = 0; c < m * static_cast<int>(x); ++c) {
    wc.instance.add(Task{1.0, 1.0, /*priority=*/0.0});
  }
  // T1: n tasks (p = n, q = n/r), taken by the GPUs at time x.
  for (int c = 0; c < n; ++c) {
    wc.instance.add(Task{static_cast<double>(n), n / r, /*priority=*/50.0});
  }
  // T2: CPU time r*n/3 each; GPU times realize the Graham worst case of
  // Fig 4 when spoliated in priority order:
  //   first block  — six tasks of length 2k+i for i = 0..k-1 (spoliated at
  //                  x + n/r, one per GPU);
  //   second block — six tasks of length 4k-1-i (picked as GPUs free up);
  //   last         — the task of length n = 6k, whose spoliation cannot
  //                  improve its completion (equality), so it stays on CPU.
  const double t2_cpu = r * n / 3.0;
  double priority = 40.0;
  for (int i = 0; i < k; ++i) {
    for (int c = 0; c < 6; ++c) {
      wc.instance.add(Task{t2_cpu, static_cast<double>(2 * k + i), priority});
      priority -= 0.001;
    }
  }
  for (int i = 0; i < k; ++i) {
    for (int c = 0; c < 6; ++c) {
      wc.instance.add(Task{t2_cpu, static_cast<double>(4 * k - 1 - i), priority});
      priority -= 0.001;
    }
  }
  wc.instance.add(Task{t2_cpu, static_cast<double>(n), priority});

  // OPT = n: T2 packs the n GPUs to exactly n (Fig 4 left); T1 on n CPUs;
  // T3/T4 fill the remaining m-n CPUs (total work x*(m+nr) <= n*(m-n)).
  wc.optimal_makespan = n;
  // HP: phase 1 ends at x; GPUs run T1 until x + n/r; spoliation of T2
  // then replays Fig 4's worst list schedule of length 2n-1.
  wc.expected_hp_makespan = x + n / r + 2.0 * n - 1.0;
  wc.theoretical_ratio = 2.0 + 2.0 / std::sqrt(3.0);
  return wc;
}

}  // namespace hp
