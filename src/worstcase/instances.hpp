#pragma once
// Worst-case instance families of Theorems 8, 11 and 14.
//
// Each generator builds the paper's adversarial task set with priorities
// chosen so that this library's deterministic tie-breaking realizes the
// adversarial HeteroPrio execution described in the proof. The bench
// bench_table2_worstcase runs HeteroPrio on them and compares the measured
// ratio to the theoretical bound.

#include "model/instance.hpp"
#include "model/platform.hpp"

namespace hp {

/// phi = (1 + sqrt(5)) / 2.
inline constexpr double kPhi = 1.6180339887498948482;

struct WorstCaseInstance {
  Instance instance;
  Platform platform{1, 1};
  double optimal_makespan = 0.0;   ///< makespan of the constructed optimum
  double expected_hp_makespan = 0.0;  ///< adversarial HeteroPrio makespan
  double theoretical_ratio = 0.0;  ///< the bound the family approaches
};

/// Theorem 8: 1 CPU + 1 GPU, two tasks with equal acceleration factor phi.
/// HeteroPrio reaches exactly phi * OPT.
[[nodiscard]] WorstCaseInstance theorem8_instance();

/// Theorem 11: m CPUs + 1 GPU. `chunks` is the number K of unit filler
/// tasks per processor (epsilon = x / K); larger K sharpens the ratio
/// towards (1 + phi) as m grows. Requires m >= 2, chunks >= 1.
[[nodiscard]] WorstCaseInstance theorem11_instance(int m, int chunks);

/// Theorem 14: n = 6k GPUs, m = n^2 CPUs. HeteroPrio approaches
/// 2 + 2/sqrt(3) ~ 3.15 as k grows. Requires k >= 1.
[[nodiscard]] WorstCaseInstance theorem14_instance(int k);

/// The r of Theorem 14: the positive root of n/r + 2n - 1 = nr/3, which
/// tends to 3 + 2*sqrt(3) as n grows.
[[nodiscard]] double theorem14_r(int n) noexcept;

}  // namespace hp
