#include "worstcase/graham_gadget.hpp"

#include <cassert>

namespace hp {

GrahamGadget graham_gadget(int k) {
  assert(k >= 1);
  GrahamGadget g;
  g.k = k;
  g.machines = 6 * k;
  const int n = g.machines;

  // Task indices: group i (i = 0..2k-1) holds six tasks of length 2k+i at
  // indices 6i..6i+5; the single task of length 6k is last (index 12k).
  g.durations.reserve(static_cast<std::size_t>(12 * k + 1));
  for (int i = 0; i < 2 * k; ++i) {
    for (int c = 0; c < 6; ++c) {
      g.durations.push_back(static_cast<double>(2 * k + i));
    }
  }
  g.durations.push_back(static_cast<double>(n));
  auto task_index = [k](int group, int copy) {
    (void)k;
    return static_cast<std::size_t>(6 * group + copy);
  };

  // Perfect packing (Fig 4 left): every machine gets exactly n work.
  g.optimal_assignment.assign(g.durations.size(), -1);
  int machine = 0;
  // Pairs (2k+i, 4k-i) for i = 1..k-1, i.e. groups (i, 2k-i): six machines
  // per i.
  for (int i = 1; i < k; ++i) {
    for (int c = 0; c < 6; ++c) {
      g.optimal_assignment[task_index(i, c)] = machine;
      g.optimal_assignment[task_index(2 * k - i, c)] = machine;
      ++machine;
    }
  }
  // Six tasks of length 3k (group k): two per machine on 3 machines.
  for (int c = 0; c < 6; ++c) {
    g.optimal_assignment[task_index(k, c)] = machine + c / 2;
  }
  machine += 3;
  // Six tasks of length 2k (group 0): three per machine on 2 machines.
  for (int c = 0; c < 6; ++c) {
    g.optimal_assignment[task_index(0, c)] = machine + c / 3;
  }
  machine += 2;
  // The length-6k task alone.
  g.optimal_assignment.back() = machine++;
  assert(machine == n);

  // Worst list order (Fig 4 right): groups 0..k-1 (lengths 2k..3k-1, one
  // per machine), then groups 2k-1 down to k (lengths 4k-1 down to 3k, so
  // the machine freeing at 2k+i picks length 4k-1-i and every machine ends
  // at 6k-1), then the length-6k task.
  for (int i = 0; i < k; ++i) {
    for (int c = 0; c < 6; ++c) g.worst_order.push_back(task_index(i, c));
  }
  for (int i = 0; i < k; ++i) {
    for (int c = 0; c < 6; ++c) {
      g.worst_order.push_back(task_index(2 * k - 1 - i, c));
    }
  }
  g.worst_order.push_back(g.durations.size() - 1);
  return g;
}

std::vector<double> worst_order_durations(const GrahamGadget& gadget) {
  std::vector<double> out;
  out.reserve(gadget.worst_order.size());
  for (std::size_t idx : gadget.worst_order) {
    out.push_back(gadget.durations[idx]);
  }
  return out;
}

}  // namespace hp
