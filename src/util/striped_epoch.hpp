#pragma once
// Striped epoch-based reclamation for retired blocks shared across threads.
//
// The parallel scheduler engine (src/par) publishes sorted ready blocks that
// worker threads read concurrently while stealing. When a shard drains a
// block and swaps in a fresh one, the old block's memory cannot be recycled
// until every thread that might still hold a raw pointer into it has moved
// on. Full hazard pointers are overkill for that pattern — readers touch a
// block only between two scheduling decisions — so we use the classic
// epoch scheme, striped per participant to keep the hot path to one relaxed
// load + one release store on a thread-private cache line:
//
//   * A global epoch counter advances by 1 whenever someone retires memory.
//   * Each participant slot records the epoch it observed when it entered
//     its critical region (kIdle when outside one).
//   * A block retired in epoch E is reclaimable once every slot is idle or
//     has observed an epoch > E: nobody can still hold a pointer read
//     before the retirement.
//
// Reclamation here means "hand the block back to the owner", not free():
// the par engine keeps blocks in arena-style pools, so `try_reclaim`
// returns the retired records whose grace period has elapsed and the
// caller recycles them. Bounded usage (blocks per run <= tasks) means we
// never need a forced flush; `drain` exists for end-of-run teardown when
// all participants have left.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hp::util {

/// One cache line per participant so epoch publication never false-shares.
inline constexpr std::size_t kEpochSlotStride = 64;

class StripedEpoch {
 public:
  using Epoch = std::uint64_t;

  /// Sentinel published by participants outside any critical region.
  static constexpr Epoch kIdle = ~Epoch{0};

  /// `slots` participants (worker threads), identified by index [0, slots).
  explicit StripedEpoch(std::size_t slots);
  ~StripedEpoch();

  StripedEpoch(const StripedEpoch&) = delete;
  StripedEpoch& operator=(const StripedEpoch&) = delete;

  [[nodiscard]] std::size_t slots() const noexcept { return num_slots_; }

  /// Enter a critical region: pins the current epoch for `slot`. Regions do
  /// not nest (the engine takes one per scheduling decision).
  void enter(std::size_t slot) noexcept;

  /// Leave the critical region entered by `slot`.
  void leave(std::size_t slot) noexcept;

  /// Record `block` as retired in the current epoch and advance the global
  /// epoch. Called by the thread that swapped the block out of the shard;
  /// callers may be inside their own critical region.
  void retire(std::size_t slot, void* block);

  /// Move every retired block whose grace period has elapsed into `out`
  /// (appending) and return how many were reclaimed. Safe to call from any
  /// participant, inside or outside a critical region.
  std::size_t try_reclaim(std::vector<void*>& out);

  /// Reclaim everything unconditionally. Only valid once no participant is
  /// inside a critical region and no more retires will happen (end of run).
  void drain(std::vector<void*>& out);

  /// Current global epoch (testing / counters).
  [[nodiscard]] Epoch current_epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Number of blocks retired but not yet reclaimed (testing / counters).
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Retired {
    void* block;
    Epoch epoch;
  };

  /// Minimum epoch any participant may still be reading under, i.e. the
  /// smallest pinned epoch, or the current epoch when everyone is idle.
  [[nodiscard]] Epoch min_observed() const noexcept;

  [[nodiscard]] std::atomic<Epoch>& slot_at(std::size_t slot) noexcept;
  [[nodiscard]] const std::atomic<Epoch>& slot_at(
      std::size_t slot) const noexcept;

  std::size_t num_slots_;
  // Raw stripe storage: one atomic per kEpochSlotStride bytes.
  unsigned char* stripes_;
  std::atomic<Epoch> global_epoch_{1};

  // Retire list is mutex-free only in the common case of the par engine
  // (single retiring shard owner); cross-thread retires share this spinlock.
  std::atomic_flag retired_lock_ = ATOMIC_FLAG_INIT;
  std::vector<Retired> retired_;
};

/// RAII critical region over a StripedEpoch slot.
class EpochGuard {
 public:
  EpochGuard(StripedEpoch& epoch, std::size_t slot) noexcept
      : epoch_(epoch), slot_(slot) {
    epoch_.enter(slot_);
  }
  ~EpochGuard() { epoch_.leave(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  StripedEpoch& epoch_;
  std::size_t slot_;
};

}  // namespace hp::util
