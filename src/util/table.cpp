#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace hp::util {

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << value;
  std::string s = oss.str();
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value) { return cell(format_double(value, precision_)); }

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      os << ' ' << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) oss << ',';
      oss << row[c];
    }
    oss << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

}  // namespace hp::util
