#pragma once
// Bump arena for per-run scheduler scratch.
//
// The scheduling hot paths allocate the same family of buffers on every run
// (ready keys, worker state, rank arrays, dual-approximation scratch). An
// Arena hands out those buffers by bumping a pointer into a reused block and
// reclaims them wholesale: either `rewind()` to a previously taken `Mark`
// (stack discipline, used by nested runs) or `reset()` back to empty. After
// the first run warms the arena no scheduler allocation hits the heap again.
//
// Lifetime rules (see docs/perf.md "Arena lifetime"):
//  - A span returned by `alloc` is valid until the arena is rewound past the
//    mark that was current when it was handed out. Never store arena
//    pointers across runs.
//  - `ArenaScope` is the only sanctioned way to free: it rewinds to the mark
//    taken at construction, so nested scopes (a scheduler invoked from
//    inside another scheduler's run) unwind LIFO.
//  - Only trivially copyable/destructible element types: nothing is ever
//    destroyed, memory is simply reused.

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace hp::util {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 1 << 16)
      : initial_bytes_(initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` elements of T, aligned for T.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena memory is reused without running destructors");
    return static_cast<T*>(alloc_bytes(count * sizeof(T), alignof(T)));
  }

  /// Zero-initialized span of `count` elements.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_zeroed(std::size_t count) {
    T* p = alloc<T>(count);
    std::memset(static_cast<void*>(p), 0, count * sizeof(T));
    return {p, count};
  }

  /// Position in the arena; `rewind` frees everything allocated after it.
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };

  [[nodiscard]] Mark mark() const noexcept { return Mark{current_, offset_}; }

  void rewind(Mark m) noexcept {
    assert(m.block < blocks_.size() || (m.block == 0 && blocks_.empty()));
    if (m.block < blocks_.size()) {
      current_ = m.block;
      offset_ = m.offset;
    }
  }

  void reset() noexcept {
    current_ = 0;
    offset_ = 0;
  }

  /// Total heap bytes backing the arena (capacity, not live allocations).
  [[nodiscard]] std::size_t reserved_bytes() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// High-water mark of live bytes over the arena's lifetime.
  [[nodiscard]] std::size_t high_water_bytes() const noexcept {
    return high_water_;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
  };

  void* alloc_bytes(std::size_t bytes, std::size_t align) {
    while (true) {
      if (current_ < blocks_.size()) {
        Block& b = blocks_[current_];
        const std::size_t at = (offset_ + align - 1) & ~(align - 1);
        if (at + bytes <= b.size) {
          offset_ = at + bytes;
          bump_high_water();
          return b.mem.get() + at;
        }
        // Doesn't fit here; try (or grow) the next block. The hole left at
        // the end of this block is reclaimed by the next rewind/reset.
        ++current_;
        offset_ = 0;
        continue;
      }
      // Need a fresh block: geometric growth from the last one so a warmed
      // arena is one or two blocks regardless of request pattern.
      const std::size_t prev = blocks_.empty() ? initial_bytes_ / 2
                                               : blocks_.back().size;
      std::size_t size = prev * 2;
      if (size < bytes + align) size = bytes + align;
      blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    }
  }

  void bump_high_water() noexcept {
    std::size_t live = offset_;
    for (std::size_t i = 0; i < current_; ++i) live += blocks_[i].size;
    if (live > high_water_) high_water_ = live;
  }

  std::size_t initial_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< block currently bumped into
  std::size_t offset_ = 0;   ///< bump offset within that block
  std::size_t high_water_ = 0;
};

/// The per-thread scratch arena shared by all scheduler engines. Each engine
/// run opens an ArenaScope on it; nested runs stack.
[[nodiscard]] Arena& scratch_arena();

/// RAII mark/rewind pair. Everything allocated from `arena` while the scope
/// is alive is reclaimed when it dies.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// Minimal vector over arena storage for trivially copyable T. Growth
/// re-allocates from the arena (the abandoned block is reclaimed at the next
/// rewind); no destructors, no shrinking. Supports exactly what the
/// scheduler scratch needs: reserve/push/insert/erase/clear.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit ArenaVector(Arena& arena) : arena_(&arena) {}
  ArenaVector(Arena& arena, std::size_t initial_capacity) : arena_(&arena) {
    reserve(initial_capacity);
  }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, size_};
  }

  void reserve(std::size_t capacity) {
    if (capacity <= capacity_) return;
    T* grown = arena_->alloc<T>(capacity);
    if (size_ != 0) std::memcpy(grown, data_, size_ * sizeof(T));
    data_ = grown;
    capacity_ = capacity;
  }

  void resize(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  void clear() noexcept { size_ = 0; }

  void push_back(const T& value) {
    if (size_ == capacity_) grow();
    data_[size_++] = value;
  }

  void pop_back() noexcept { --size_; }

  /// Insert before `pos` (a pointer into [begin(), end()]).
  void insert(T* pos, const T& value) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    if (size_ == capacity_) grow();  // grow() moves data_; recompute below
    T* p = data_ + at;
    std::memmove(p + 1, p, (size_ - at) * sizeof(T));
    *p = value;
    ++size_;
  }

  void erase(T* pos) noexcept {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    std::memmove(data_ + at, data_ + at + 1, (size_ - at - 1) * sizeof(T));
    --size_;
  }

 private:
  void grow() { reserve(capacity_ == 0 ? 8 : capacity_ * 2); }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace hp::util
