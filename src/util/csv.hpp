#pragma once
// Minimal CSV writer, used by benches to dump figure series for plotting.

#include <fstream>
#include <string>
#include <vector>

namespace hp::util {

/// Streams rows to a CSV file. The file is created on construction and
/// flushed/closed by the destructor (RAII). Values containing commas or
/// quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  /// True if the file was opened successfully.
  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(out_); }

  void write_row(const std::vector<std::string>& cells);

  /// Quote a cell if needed.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
};

}  // namespace hp::util
