#include "util/arena.hpp"

namespace hp::util {

Arena& scratch_arena() {
  // One arena per thread: the sweep driver runs schedulers on worker
  // threads concurrently, and runs on the same thread nest via ArenaScope.
  static thread_local Arena arena(1 << 20);
  return arena;
}

}  // namespace hp::util
