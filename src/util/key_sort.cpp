#include "util/key_sort.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace hp::util {

namespace {

constexpr std::size_t kMaxBucketBits = 16;
constexpr std::size_t kSmallSort = 96;     ///< below this, std::sort directly
constexpr std::size_t kInsertionMax = 40;  ///< per-bucket insertion cutoff

/// Buckets scale with n (≈ one element per bucket, capped at 2^16): the
/// counting pass touches every counter once, so a fixed 64Ki-bucket table
/// costs ~¾MB of traffic per call and dominates at the ready-list sizes the
/// DAG engines sort. The sorted result is a total order either way — bucket
/// count changes only the constant factor, never the output.
inline std::size_t bucket_bits_for(std::size_t n) noexcept {
  const auto bits = static_cast<std::size_t>(std::bit_width(n));
  return bits < kMaxBucketBits ? bits : kMaxBucketBits;
}

inline bool less_key_id(const KeyId& a, const KeyId& b) noexcept {
  return a.key != b.key ? a.key < b.key : a.id < b.id;
}

inline bool less_key2_id(const KeyId2& a, const KeyId2& b) noexcept {
  if (a.k0 != b.k0) return a.k0 < b.k0;
  if (a.k1 != b.k1) return a.k1 < b.k1;
  return a.id < b.id;
}

template <typename T, typename Less>
void insertion_sort(T* first, T* last, Less less) noexcept {
  for (T* it = first + 1; it < last; ++it) {
    const T v = *it;
    T* p = it;
    while (p > first && less(v, p[-1])) {
      *p = p[-1];
      --p;
    }
    *p = v;
  }
}

/// Right-shift that maps [lo, hi] onto [0, 2^bucket_bits): the bucket index
/// is the top bits *of the occupied key range*, not of the absolute key.
/// Packed double keys use only a narrow slice of u64 space (the exponent
/// field moves slowly), so absolute-top-bits bucketing collapses onto a few
/// hundred buckets; range scaling spreads the live range over all buckets.
inline unsigned range_shift(std::uint64_t lo, std::uint64_t hi,
                            std::size_t bucket_bits) noexcept {
  const int span_bits = 64 - std::countl_zero(hi - lo);  // hi > lo here
  return span_bits > static_cast<int>(bucket_bits)
             ? static_cast<unsigned>(span_bits - bucket_bits)
             : 0u;
}

/// One range-scaled scatter pass into n-scaled buckets, then a tiny
/// comparison sort per bucket. Stable overall order is irrelevant because
/// `less` is total (ties resolved by id), so per-bucket sorting suffices.
template <typename T, typename Less, typename Primary>
void bucket_sort(std::span<T> items, Arena& arena, Less less,
                 Primary primary) {
  const std::size_t n = items.size();
  std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = primary(items[i]);
    lo = std::min(lo, k);
    hi = std::max(hi, k);
  }
  if (lo == hi) {
    // Degenerate key distribution: one bucket, fall back outright.
    std::sort(items.begin(), items.end(), less);
    return;
  }
  const std::size_t buckets = std::size_t{1} << bucket_bits_for(n);
  const unsigned shift = range_shift(lo, hi, bucket_bits_for(n));

  const ArenaScope scope(arena);
  T* tmp = arena.alloc<T>(n);
  const std::span<std::uint32_t> starts =
      arena.alloc_zeroed<std::uint32_t>(buckets + 1);
  for (std::size_t i = 0; i < n; ++i) {
    ++starts[((primary(items[i]) - lo) >> shift) + 1];
  }
  for (std::size_t b = 0; b < buckets; ++b) starts[b + 1] += starts[b];
  std::uint32_t* fill = arena.alloc<std::uint32_t>(buckets);
  std::memcpy(fill, starts.data(), buckets * sizeof(std::uint32_t));
  for (std::size_t i = 0; i < n; ++i) {
    tmp[fill[(primary(items[i]) - lo) >> shift]++] = items[i];
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    T* first = tmp + starts[b];
    T* last = tmp + starts[b + 1];
    const auto len = static_cast<std::size_t>(last - first);
    if (len <= 1) continue;
    if (len <= kInsertionMax) {
      insertion_sort(first, last, less);
    } else {
      std::sort(first, last, less);
    }
  }
  std::memcpy(items.data(), tmp, n * sizeof(T));
}

}  // namespace

void sort_key_id(std::span<KeyId> items, Arena& arena) {
  if (items.size() < kSmallSort) {
    std::sort(items.begin(), items.end(), less_key_id);
    return;
  }
  bucket_sort<KeyId>(items, arena, less_key_id,
                     [](const KeyId& e) noexcept { return e.key; });
}

void sort_key2_id(std::span<KeyId2> items, Arena& arena) {
  if (items.size() < kSmallSort) {
    std::sort(items.begin(), items.end(), less_key2_id);
    return;
  }
  bucket_sort<KeyId2>(items, arena, less_key2_id,
                      [](const KeyId2& e) noexcept { return e.k0; });
}

}  // namespace hp::util
