#pragma once
// Integer-key sorts for the packed scheduler orderings (see model/task_soa).
//
// The hot sorts in this codebase order n packed {u64 key, u32 id} pairs
// ascending by (key, id). A comparison sort spends most of its time in
// branch mispredictions on random keys; the distribution sort here scatters
// by the top 16 key bits into 65536 buckets in one counting pass (stable),
// then finishes each bucket with a tiny (key, id) sort — for the uniform-ish
// key distributions the generators produce, buckets average a couple of
// elements, giving close to linear time. Degenerate distributions (all keys
// equal) collapse to one bucket and fall back to std::sort, which is the
// status quo cost. All scratch comes from the arena.

#include <cstdint>
#include <span>

#include "util/arena.hpp"

namespace hp::util {

/// One sortable element: callers encode the tie-break in `id` (task id, or
/// topological position for the DAG rank orders).
struct KeyId {
  std::uint64_t key;
  std::uint32_t id;
};

/// Sort ascending by (key, id). O(n) scratch from `arena` (reclaimed before
/// returning); not in-place internally but the result lands back in `items`.
void sort_key_id(std::span<KeyId> items, Arena& arena);

/// Two-level key (the varying-priority ready order): ascending (k0, k1, id).
struct KeyId2 {
  std::uint64_t k0;
  std::uint64_t k1;
  std::uint32_t id;
};

void sort_key2_id(std::span<KeyId2> items, Arena& arena);

}  // namespace hp::util
