#include "util/csv.hpp"

namespace hp::util {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> headers)
    : out_(path) {
  if (out_) write_row(headers);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace hp::util
