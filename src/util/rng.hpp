#pragma once
// Deterministic, seedable PRNG utilities.
//
// All randomized components in this library (instance generators, timing
// noise) take an explicit Rng so that every experiment is reproducible from
// its seed. The generator is xoshiro256**, seeded via splitmix64, which is
// fast, has a 256-bit state and passes BigCrush; std::mt19937 is avoided
// because its state is large and its seeding from a single 32-bit value is
// notoriously weak.

#include <array>
#include <cstdint>
#include <initializer_list>
#include <limits>

namespace hp::util {

/// splitmix64 step; used to expand a single 64-bit seed into a full state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic RNG seed for one cell of an experiment grid, mixed from the
/// cell's coordinates (kernel index, tile count, sigma index, repetition, …).
/// The seed depends only on the coordinate values — never on submission or
/// execution order — so a sweep fanned across a thread pool draws exactly
/// the random numbers the serial sweep draws. Coordinate order matters;
/// distinct coordinate tuples give (overwhelmingly) distinct seeds.
[[nodiscard]] constexpr std::uint64_t seed_from_cell(
    std::initializer_list<std::uint64_t> coords,
    std::uint64_t salt = 0) noexcept {
  std::uint64_t state = salt ^ 0xa0761d6478bd642fULL;
  std::uint64_t seed = splitmix64(state);
  for (const std::uint64_t c : coords) {
    state ^= c;
    seed = splitmix64(state);
  }
  return seed;
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Bernoulli trial: true with probability `p` (clamped to [0, 1]).
  /// Always consumes exactly one draw, so downstream values stay aligned
  /// across different probabilities.
  bool bernoulli(double p) noexcept;

  /// Exponential deviate with the given rate (mean 1/rate). Used for
  /// fault-plan inter-arrival times (crash instants, straggler windows).
  /// rate <= 0 returns +infinity (the event never happens).
  double exponential(double rate) noexcept;

  /// Standard normal deviate (Marsaglia polar method).
  double normal() noexcept;

  /// Lognormal deviate: exp(mu + sigma * N(0,1)).
  double lognormal(double mu, double sigma) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace hp::util
