#pragma once
// Small descriptive-statistics helpers used by benches and tests.

#include <cstddef>
#include <span>
#include <vector>

namespace hp::util {

/// Summary of a sample: count, mean, standard deviation, extrema, quantiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
};

/// Compute a Summary of `values`. Empty input yields a zeroed Summary.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Quantile by linear interpolation on the sorted sample, q in [0, 1].
[[nodiscard]] double quantile(std::span<const double> sorted_values, double q);

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> values);

/// Geometric mean; 0 for empty input. All values must be positive.
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Welford online accumulator, for streaming summaries.
class OnlineStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hp::util
