#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hp::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double quantile(std::span<const double> sorted_values, double q) {
  if (sorted_values.empty()) return 0.0;
  if (sorted_values.size() == 1) return sorted_values[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.mean = mean(sorted);
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile(sorted, 0.5);
  s.p95 = quantile(sorted, 0.95);
  if (sorted.size() > 1) {
    double acc = 0.0;
    for (double v : sorted) acc += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(sorted.size() - 1));
  }
  return s;
}

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace hp::util
