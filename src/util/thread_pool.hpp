#pragma once
// Fixed-size thread pool for fanning experiment grids across cores.
//
// The sweep engines submit one job per grid cell; each cell derives its RNG
// seed from its own coordinates (util::seed_from_cell), never from
// submission or execution order, and writes its result into a
// pre-allocated slot indexed by cell position. Together this makes the
// parallel output bit-identical to the serial run — parallelism only
// changes wall-clock time, never results.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hp::util {

/// Resolve a thread-count request: <= 0 means "all hardware threads"
/// (at least 1), anything else is taken as given.
[[nodiscard]] unsigned resolve_threads(int requested) noexcept;

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a job. Jobs may be submitted from any thread, including from
  /// inside a running job. Throws std::runtime_error after shutdown() —
  /// silently dropping work would break the "every cell ran" contract the
  /// sweep engines rely on.
  void submit(std::function<void()> job);

  /// Block until the queue is empty and no job is running. If any job threw,
  /// rethrows the first captured exception (the remaining jobs still ran).
  void wait_idle();

  /// Drain the queue, join every worker and start rejecting new work.
  /// Idempotent; called implicitly by the destructor. Unlike the destructor
  /// it leaves the pool object alive so late submit() calls fail loudly
  /// instead of racing destruction.
  void shutdown();

  [[nodiscard]] bool is_shut_down() const noexcept;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Run body(0..count-1), fanned over `threads` workers (see resolve_threads;
/// threads == 1 executes serially, in index order, on the calling thread —
/// the reference path for determinism checks). Each index runs exactly once;
/// the assignment of indices to workers is unspecified in parallel mode, so
/// bodies must not depend on execution order. Rethrows the first exception.
void parallel_for(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace hp::util
