#include "util/striped_epoch.hpp"

#include <algorithm>
#include <cassert>
#include <new>

namespace hp::util {
namespace {

class SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag& flag) noexcept : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Contention here is rare (retire/reclaim, never the read hot path);
      // a bare spin keeps the helper header-light.
    }
  }
  ~SpinGuard() { flag_.clear(std::memory_order_release); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  std::atomic_flag& flag_;
};

}  // namespace

StripedEpoch::StripedEpoch(std::size_t slots)
    : num_slots_(std::max<std::size_t>(1, slots)) {
  stripes_ = static_cast<unsigned char*>(::operator new(
      num_slots_ * kEpochSlotStride, std::align_val_t{kEpochSlotStride}));
  for (std::size_t i = 0; i < num_slots_; ++i) {
    new (stripes_ + i * kEpochSlotStride) std::atomic<Epoch>(kIdle);
  }
}

StripedEpoch::~StripedEpoch() {
  for (std::size_t i = 0; i < num_slots_; ++i) {
    slot_at(i).~atomic<Epoch>();
  }
  ::operator delete(stripes_, std::align_val_t{kEpochSlotStride});
}

std::atomic<StripedEpoch::Epoch>& StripedEpoch::slot_at(
    std::size_t slot) noexcept {
  assert(slot < num_slots_);
  return *reinterpret_cast<std::atomic<Epoch>*>(stripes_ +
                                                slot * kEpochSlotStride);
}

const std::atomic<StripedEpoch::Epoch>& StripedEpoch::slot_at(
    std::size_t slot) const noexcept {
  assert(slot < num_slots_);
  return *reinterpret_cast<const std::atomic<Epoch>*>(stripes_ +
                                                      slot * kEpochSlotStride);
}

void StripedEpoch::enter(std::size_t slot) noexcept {
  // seq_cst on the publication: the epoch load and the slot store must not
  // reorder against the retirer's epoch bump, or a reader could pin an
  // epoch the retirer already believes nobody observes.
  const Epoch e = global_epoch_.load(std::memory_order_seq_cst);
  slot_at(slot).store(e, std::memory_order_seq_cst);
}

void StripedEpoch::leave(std::size_t slot) noexcept {
  slot_at(slot).store(kIdle, std::memory_order_release);
}

void StripedEpoch::retire(std::size_t slot, void* block) {
  (void)slot;
  const Epoch e = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  const SpinGuard guard(retired_lock_);
  retired_.push_back(Retired{block, e});
}

StripedEpoch::Epoch StripedEpoch::min_observed() const noexcept {
  Epoch min = global_epoch_.load(std::memory_order_seq_cst);
  for (std::size_t i = 0; i < num_slots_; ++i) {
    const Epoch e = slot_at(i).load(std::memory_order_seq_cst);
    if (e != kIdle) min = std::min(min, e);
  }
  return min;
}

std::size_t StripedEpoch::try_reclaim(std::vector<void*>& out) {
  const Epoch safe = min_observed();
  const SpinGuard guard(retired_lock_);
  std::size_t reclaimed = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < retired_.size(); ++i) {
    // Retired in epoch E, pinned epochs are all > E => no live reader.
    if (retired_[i].epoch < safe) {
      out.push_back(retired_[i].block);
      ++reclaimed;
    } else {
      retired_[keep++] = retired_[i];
    }
  }
  retired_.resize(keep);
  return reclaimed;
}

void StripedEpoch::drain(std::vector<void*>& out) {
  const SpinGuard guard(retired_lock_);
  for (const Retired& r : retired_) out.push_back(r.block);
  retired_.clear();
}

std::size_t StripedEpoch::pending() const {
  const SpinGuard guard(
      const_cast<std::atomic_flag&>(retired_lock_));
  return retired_.size();
}

}  // namespace hp::util
