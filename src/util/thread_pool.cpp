#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace hp::util {

unsigned resolve_threads(int requested) noexcept {
  if (requested > 0) return static_cast<unsigned>(requested);
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

bool ThreadPool::is_shut_down() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      throw std::runtime_error(
          "ThreadPool::submit: pool is shut down; job rejected");
    }
    queue_.push(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_ != nullptr) {
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> job = std::move(queue_.front());
    queue_.pop();
    ++active_;
    lock.unlock();
    try {
      job();
    } catch (...) {
      lock.lock();
      if (first_error_ == nullptr) first_error_ = std::current_exception();
      lock.unlock();
    }
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

void parallel_for(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& body) {
  const unsigned n_threads = resolve_threads(threads);
  if (n_threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min<std::size_t>(n_threads, count));
  // One chasing job per worker instead of one per index: the atomic cursor
  // keeps cell granularity while bounding queue traffic to the worker count.
  std::atomic<std::size_t> next{0};
  for (unsigned t = 0; t < pool.size(); ++t) {
    pool.submit([&next, count, &body] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        body(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace hp::util
