#include "util/rng.hpp"

#include <cmath>
#include <limits>

namespace hp::util {

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept {
  const double u = uniform01();
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return u < p;
}

double Rng::exponential(double rate) noexcept {
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  // uniform01() is in [0, 1); flip to (0, 1] so log() never sees zero.
  return -std::log(1.0 - uniform01()) / rate;
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

}  // namespace hp::util
