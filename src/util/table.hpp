#pragma once
// Fixed-width ASCII table printer for bench/example output.
//
// Benches print paper-style tables (rows of a figure's series); this helper
// keeps columns aligned and formats doubles consistently.

#include <iosfwd>
#include <string>
#include <vector>

namespace hp::util {

/// Column-aligned ASCII table. Cells are stored as strings; numeric
/// convenience overloads format with a configurable precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int precision = 3);

  /// Start a new row.
  Table& row();

  /// Append a cell to the current row.
  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value);
  Table& cell(long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(std::size_t value) { return cell(static_cast<long long>(value)); }

  /// Number of data rows so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with column separators and a header rule.
  void print(std::ostream& os) const;

  /// Render as CSV (headers + rows).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_;
};

/// Format a double with the given precision, trimming trailing zeros.
[[nodiscard]] std::string format_double(double value, int precision);

}  // namespace hp::util
