#include "baselines/heft.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "obs/replay.hpp"

namespace hp {

namespace {

/// Free-gap index of one worker's timeline.
///
/// The seed implementation (kept as heft_ref) stores busy segments and scans
/// them per query, which is O(n * segments) per worker and dominated the
/// whole pipeline at n = 1e5. This class stores the *complement*: the end of
/// the last busy segment (`last_finish_`, the append fast path — the only
/// case that ever occurs for independent tasks, whose ready time is 0) plus
/// the maximal free gaps, indexed twice:
///
///  - `gaps_`: start -> end, ordered by start, to find the unique gap
///    straddling `ready` and the gap a placement lands in;
///  - `buckets_[b]`: the gaps whose length has binary exponent ~b, each
///    bucket ordered by start, with a bitmask of non-empty buckets. A fit
///    query for duration `dt` only probes buckets that can hold a gap of
///    length >= dt; in every bucket above the boundary bucket the first gap
///    at/after `ready` fits by construction, so the scan is O(1) there and
///    only the boundary bucket pays a (short, length-checked) walk.
///
/// earliest_start() returns exactly the minimum feasible start >= ready, the
/// same double the reference's monotone gap walk returns, so schedules stay
/// bitwise identical (tests/test_heft_regression.cpp).
class WorkerTimeline {
 public:
  /// Earliest start >= ready for a block of length `dt`.
  [[nodiscard]] double earliest_start(double ready, double dt,
                                      bool insertion) const {
    const double append = std::max(ready, last_finish_);
    if (!insertion || gaps_.empty()) return append;
    // The unique gap with start <= ready < end, if any: its candidate is
    // `ready` itself, which no later gap and no append can beat.
    auto at = gaps_.upper_bound(ready);
    if (at != gaps_.begin()) {
      const auto& [gap_start, gap_end] = *std::prev(at);
      if (ready < gap_end && ready + dt <= gap_end) return ready;
    }
    // Gaps starting at/after ready, by length bucket.
    double best = append;
    const std::uint64_t candidates =
        nonempty_ & (~std::uint64_t{0} << bucket_of(dt));
    for (std::uint64_t mask = candidates; mask != 0; mask &= mask - 1) {
      const auto& bucket = buckets_[std::countr_zero(mask)];
      for (auto it = bucket.lower_bound({ready, 0.0}); it != bucket.end();
           ++it) {
        if (it->first >= best) break;  // cannot improve on the current best
        if (it->first + dt <= it->second) {
          best = it->first;
          break;
        }
      }
    }
    return best;
  }

  void insert(double start, double end) {
    if (start >= last_finish_) {
      // Append: the idle stretch between the old horizon and the new block
      // becomes a gap.
      add_gap(last_finish_, start);
      last_finish_ = end;
      return;
    }
    // The block was placed at a feasible start, so it lies inside one
    // existing gap; split it.
    assert(!gaps_.empty());
    auto it = gaps_.upper_bound(start);
    assert(it != gaps_.begin());
    --it;
    const double gap_start = it->first;
    const double gap_end = it->second;
    assert(gap_start <= start && end <= gap_end);
    remove_gap(it);
    add_gap(gap_start, start);
    add_gap(end, gap_end);
  }

 private:
  using Gap = std::pair<double, double>;  // (start, end), ordered by start

  /// Length buckets cover binary exponents [-32, 31] of the gap length,
  /// clamped at both ends; boundary buckets are handled by the per-gap
  /// length check in earliest_start().
  static int bucket_of(double length) noexcept {
    return std::clamp(std::ilogb(length) + 32, 0, 63);
  }

  void add_gap(double start, double end) {
    if (!(end > start)) return;
    gaps_.emplace(start, end);
    const int b = bucket_of(end - start);
    buckets_[static_cast<std::size_t>(b)].emplace(start, end);
    nonempty_ |= std::uint64_t{1} << b;
  }

  void remove_gap(std::map<double, double>::iterator it) {
    const int b = bucket_of(it->second - it->first);
    auto& bucket = buckets_[static_cast<std::size_t>(b)];
    bucket.erase({it->first, it->second});
    if (bucket.empty()) nonempty_ &= ~(std::uint64_t{1} << b);
    gaps_.erase(it);
  }

  double last_finish_ = 0.0;
  std::map<double, double> gaps_;
  std::array<std::set<Gap>, 64> buckets_;
  std::uint64_t nonempty_ = 0;
};

Schedule heft_run(std::span<const Task> tasks, const TaskGraph* graph,
                  const Platform& platform, const HeftOptions& options,
                  const std::vector<TaskId>& order) {
  Schedule schedule(tasks.size());
  std::vector<WorkerTimeline> timeline(
      static_cast<std::size_t>(platform.workers()));

  for (TaskId id : order) {
    const Task& t = tasks[static_cast<std::size_t>(id)];
    double ready = 0.0;
    if (graph != nullptr) {
      for (TaskId pred : graph->predecessors(id)) {
        ready = std::max(ready, schedule.placement(pred).end);
      }
    }
    WorkerId best_w = 0;
    double best_start = 0.0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (WorkerId w = 0; w < platform.workers(); ++w) {
      const double dt = Platform::time_on(t, platform.type_of(w));
      const double start = timeline[static_cast<std::size_t>(w)].earliest_start(
          ready, dt, options.insertion);
      if (start + dt < best_finish) {
        best_finish = start + dt;
        best_start = start;
        best_w = w;
      }
    }
    timeline[static_cast<std::size_t>(best_w)].insert(best_start, best_finish);
    schedule.place(id, best_w, best_start, best_finish);
  }
  return schedule;
}

}  // namespace

Schedule heft(const TaskGraph& graph, const Platform& platform,
              const HeftOptions& options) {
  assert(graph.finalized());
  assert(options.rank != RankScheme::kFifo && "HEFT requires a rank scheme");

  const std::vector<double> rank = bottom_levels(graph, options.rank);
  std::vector<TaskId> order(graph.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  // Decreasing upward rank. With strictly positive weights this is a
  // topological order (a predecessor's rank strictly exceeds its
  // successors'); break rank ties topologically via a stable sort on the
  // topological baseline cached by finalize().
  const std::span<const TaskId> topo = graph.topo_order();
  std::vector<std::size_t> topo_pos(graph.size());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    topo_pos[static_cast<std::size_t>(topo[i])] = i;
  }
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double ra = rank[static_cast<std::size_t>(a)];
    const double rb = rank[static_cast<std::size_t>(b)];
    if (ra != rb) return ra > rb;
    return topo_pos[static_cast<std::size_t>(a)] <
           topo_pos[static_cast<std::size_t>(b)];
  });
  Schedule schedule = heft_run(graph.tasks(), &graph, platform, options, order);
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

Schedule heft_independent(std::span<const Task> tasks, const Platform& platform,
                          const HeftOptions& options) {
  assert(options.rank != RankScheme::kFifo && "HEFT requires a rank scheme");
  std::vector<TaskId> order(tasks.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double ra =
        rank_weight(tasks[static_cast<std::size_t>(a)], options.rank);
    const double rb =
        rank_weight(tasks[static_cast<std::size_t>(b)], options.rank);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  Schedule schedule = heft_run(tasks, nullptr, platform, options, order);
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

}  // namespace hp
