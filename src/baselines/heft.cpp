#include "baselines/heft.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "model/task_soa.hpp"
#include "obs/profile.hpp"
#include "obs/replay.hpp"
#include "util/arena.hpp"
#include "util/key_sort.hpp"

namespace hp {

namespace {

/// Free-gap index of one worker's timeline.
///
/// The seed implementation (kept as heft_ref) stores busy segments and scans
/// them per query, which is O(n * segments) per worker and dominated the
/// whole pipeline at n = 1e5. This class stores the *complement*: the end of
/// the last busy segment (`last_finish_`, the append fast path — the only
/// case that ever occurs for independent tasks, whose ready time is 0) plus
/// the maximal free gaps, indexed twice:
///
///  - `gaps_`: start -> end, ordered by start, to find the unique gap
///    straddling `ready` and the gap a placement lands in;
///  - `buckets_[b]`: the gaps whose length has binary exponent ~b, each
///    bucket ordered by start, with a bitmask of non-empty buckets. A fit
///    query for duration `dt` only probes buckets that can hold a gap of
///    length >= dt; in every bucket above the boundary bucket the first gap
///    at/after `ready` fits by construction, so the scan is O(1) there and
///    only the boundary bucket pays a (short, length-checked) walk.
///
/// earliest_start() returns exactly the minimum feasible start >= ready, the
/// same double the reference's monotone gap walk returns, so schedules stay
/// bitwise identical (tests/test_heft_regression.cpp).
class WorkerTimeline {
 public:
  /// Earliest start >= ready for a block of length `dt`.
  [[nodiscard]] double earliest_start(double ready, double dt,
                                      bool insertion) const {
    const double append = std::max(ready, last_finish_);
    if (!insertion || gaps_.empty()) return append;
    // The unique gap with start <= ready < end, if any: its candidate is
    // `ready` itself, which no later gap and no append can beat.
    auto at = gaps_.upper_bound(ready);
    if (at != gaps_.begin()) {
      const auto& [gap_start, gap_end] = *std::prev(at);
      if (ready < gap_end && ready + dt <= gap_end) return ready;
    }
    // Gaps starting at/after ready, by length bucket.
    double best = append;
    const std::uint64_t candidates =
        nonempty_ & (~std::uint64_t{0} << bucket_of(dt));
    for (std::uint64_t mask = candidates; mask != 0; mask &= mask - 1) {
      const auto& bucket = buckets_[std::countr_zero(mask)];
      for (auto it = bucket.lower_bound({ready, 0.0}); it != bucket.end();
           ++it) {
        if (it->first >= best) break;  // cannot improve on the current best
        if (it->first + dt <= it->second) {
          best = it->first;
          break;
        }
      }
    }
    return best;
  }

  void insert(double start, double end) {
    if (start >= last_finish_) {
      // Append: the idle stretch between the old horizon and the new block
      // becomes a gap.
      add_gap(last_finish_, start);
      last_finish_ = end;
      return;
    }
    // The block was placed at a feasible start, so it lies inside one
    // existing gap; split it.
    assert(!gaps_.empty());
    auto it = gaps_.upper_bound(start);
    assert(it != gaps_.begin());
    --it;
    const double gap_start = it->first;
    const double gap_end = it->second;
    assert(gap_start <= start && end <= gap_end);
    remove_gap(it);
    add_gap(gap_start, start);
    add_gap(end, gap_end);
  }

 private:
  using Gap = std::pair<double, double>;  // (start, end), ordered by start

  /// Length buckets cover binary exponents [-32, 31] of the gap length,
  /// clamped at both ends; boundary buckets are handled by the per-gap
  /// length check in earliest_start().
  static int bucket_of(double length) noexcept {
    return std::clamp(std::ilogb(length) + 32, 0, 63);
  }

  void add_gap(double start, double end) {
    if (!(end > start)) return;
    gaps_.emplace(start, end);
    const int b = bucket_of(end - start);
    buckets_[static_cast<std::size_t>(b)].emplace(start, end);
    nonempty_ |= std::uint64_t{1} << b;
  }

  void remove_gap(std::map<double, double>::iterator it) {
    const int b = bucket_of(it->second - it->first);
    auto& bucket = buckets_[static_cast<std::size_t>(b)];
    bucket.erase({it->first, it->second});
    if (bucket.empty()) nonempty_ &= ~(std::uint64_t{1} << b);
    gaps_.erase(it);
  }

  double last_finish_ = 0.0;
  std::map<double, double> gaps_;
  std::array<std::set<Gap>, 64> buckets_;
  std::uint64_t nonempty_ = 0;
};

Schedule heft_run(std::span<const Task> tasks, const TaskGraph* graph,
                  const Platform& platform, const HeftOptions& options,
                  std::span<const TaskId> order) {
  Schedule schedule(tasks.size());
  std::vector<WorkerTimeline> timeline(
      static_cast<std::size_t>(platform.workers()));

  for (TaskId id : order) {
    const obs::PhaseScope gap_scope(options.metrics,
                                    obs::Phase::kHeftGapSearch);
    const Task& t = tasks[static_cast<std::size_t>(id)];
    double ready = 0.0;
    if (graph != nullptr) {
      for (TaskId pred : graph->predecessors(id)) {
        ready = std::max(ready, schedule.placement(pred).end);
      }
    }
    // The duration only depends on the worker's type; hoist both values out
    // of the worker scan instead of re-deriving them per worker.
    const double dt_by_type[2] = {t.cpu_time, t.gpu_time};
    WorkerId best_w = 0;
    double best_start = 0.0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (WorkerId w = 0; w < platform.workers(); ++w) {
      const double dt =
          dt_by_type[static_cast<std::size_t>(platform.type_of(w))];
      const double start = timeline[static_cast<std::size_t>(w)].earliest_start(
          ready, dt, options.insertion);
      if (start + dt < best_finish) {
        best_finish = start + dt;
        best_start = start;
        best_w = w;
      }
    }
    timeline[static_cast<std::size_t>(best_w)].insert(best_start, best_finish);
    schedule.place(id, best_w, best_start, best_finish);
  }
  return schedule;
}

/// Independent-mode inner loop. Every task is ready at 0, so placements only
/// ever append at a worker's horizon and the gap index can never hold a gap:
/// the whole timeline state is one finish time per worker, kept in a flat
/// array the worker scan walks contiguously. Start times, worker choice and
/// tie-breaks are exactly heft_run's (append = max(0, last_finish), first
/// strictly-better worker wins), so schedules stay bitwise identical to
/// heft_ref (tests/test_heft_regression.cpp).
Schedule heft_independent_run(std::span<const Task> tasks,
                              const Platform& platform,
                              std::span<const util::KeyId> order,
                              const HeftOptions& options, util::Arena& arena) {
  Schedule schedule(tasks.size());
  const util::ArenaScope scope(arena);
  // One scope around the whole placement loop: the per-task body is a flat
  // ~W-lane scan of a few ns, where even a sampled per-task scope entry
  // would be measurable (the DAG loop above, with its gap-index queries,
  // affords per-task sampling).
  const obs::PhaseScope gap_scope(options.metrics,
                                  obs::Phase::kHeftGapSearch);
  const auto wcount = static_cast<std::size_t>(platform.workers());
  const std::span<double> finish = arena.alloc_zeroed<double>(wcount);
  const auto cpus = static_cast<std::size_t>(platform.cpus());

  for (const util::KeyId& entry : order) {
    const auto id = static_cast<TaskId>(entry.id);
    const Task& t = tasks[entry.id];
    const double dt_by_type[2] = {t.cpu_time, t.gpu_time};
    std::size_t best_w = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (std::size_t w = 0; w < wcount; ++w) {
      const double end = finish[w] + dt_by_type[w >= cpus ? 1 : 0];
      if (end < best_finish) {
        best_finish = end;
        best_w = w;
      }
    }
    schedule.place(id, static_cast<WorkerId>(best_w), finish[best_w],
                   best_finish);
    finish[best_w] = best_finish;
  }
  return schedule;
}

}  // namespace

Schedule heft(const TaskGraph& graph, const Platform& platform,
              const HeftOptions& options) {
  assert(graph.finalized());
  assert(options.rank != RankScheme::kFifo && "HEFT requires a rank scheme");

  const obs::PhaseScope engine_scope(options.metrics, obs::Phase::kEngine);
  const std::vector<double> rank = [&] {
    const obs::PhaseScope rank_scope(options.metrics, obs::Phase::kHeftRank);
    return bottom_levels(graph, options.rank);
  }();
  // Decreasing upward rank. With strictly positive weights this is a
  // topological order (a predecessor's rank strictly exceeds its
  // successors'); rank ties break topologically, which the packed sort gets
  // for free by carrying the topological position (not the task id) as the
  // tie-break id. Ascending (descending_key(rank), topo_pos) is exactly the
  // reference comparator (rank desc, topo order asc).
  const std::span<const TaskId> topo = graph.topo_order();
  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope scope(arena);
  const std::span<util::KeyId> keyed{arena.alloc<util::KeyId>(graph.size()),
                                     graph.size()};
  const std::span<TaskId> order{arena.alloc<TaskId>(graph.size()),
                                graph.size()};
  {
    const obs::PhaseScope rank_scope(options.metrics, obs::Phase::kHeftRank);
    for (std::size_t i = 0; i < topo.size(); ++i) {
      keyed[i] = util::KeyId{
          soa::descending_key(rank[static_cast<std::size_t>(topo[i])]),
          static_cast<std::uint32_t>(i)};
    }
    util::sort_key_id(keyed, arena);
    for (std::size_t i = 0; i < keyed.size(); ++i) {
      order[i] = topo[keyed[i].id];
    }
  }
  Schedule schedule = heft_run(graph.tasks(), &graph, platform, options, order);
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

Schedule heft_independent(std::span<const Task> tasks, const Platform& platform,
                          const HeftOptions& options) {
  assert(options.rank != RankScheme::kFifo && "HEFT requires a rank scheme");
  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope scope(arena);
  const obs::PhaseScope engine_scope(options.metrics, obs::Phase::kEngine);
  // Rank weights are computed once into the key array instead of twice per
  // comparison; ascending (descending_key(weight), id) is the reference
  // order (weight desc, task id asc).
  const std::span<util::KeyId> order{arena.alloc<util::KeyId>(tasks.size()),
                                     tasks.size()};
  {
    const obs::PhaseScope rank_scope(options.metrics, obs::Phase::kHeftRank);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      order[i] =
          util::KeyId{soa::descending_key(rank_weight(tasks[i], options.rank)),
                      static_cast<std::uint32_t>(i)};
    }
    util::sort_key_id(order, arena);
  }
  Schedule schedule =
      heft_independent_run(tasks, platform, order, options, arena);
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

}  // namespace hp
