#include "baselines/graham.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

namespace hp {

ListScheduleResult list_schedule_homogeneous(std::span<const double> durations,
                                             int machines) {
  assert(machines > 0);
  ListScheduleResult res;
  res.machine.assign(durations.size(), -1);
  res.start.assign(durations.size(), 0.0);

  // Min-heap of (available time, machine id).
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (int mach = 0; mach < machines; ++mach) free_at.emplace(0.0, mach);

  for (std::size_t i = 0; i < durations.size(); ++i) {
    auto [t, mach] = free_at.top();
    free_at.pop();
    res.machine[i] = mach;
    res.start[i] = t;
    const double end = t + durations[i];
    res.makespan = std::max(res.makespan, end);
    free_at.emplace(end, mach);
  }
  return res;
}

ListScheduleResult lpt_schedule_homogeneous(std::span<const double> durations,
                                            int machines) {
  std::vector<std::size_t> order(durations.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (durations[a] != durations[b]) return durations[a] > durations[b];
    return a < b;
  });
  std::vector<double> sorted(durations.size());
  for (std::size_t i = 0; i < order.size(); ++i) sorted[i] = durations[order[i]];
  const ListScheduleResult inner = list_schedule_homogeneous(sorted, machines);
  ListScheduleResult res;
  res.makespan = inner.makespan;
  res.machine.assign(durations.size(), -1);
  res.start.assign(durations.size(), 0.0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    res.machine[order[i]] = inner.machine[i];
    res.start[order[i]] = inner.start[i];
  }
  return res;
}

}  // namespace hp
