#pragma once
// Reference HEFT: the straightforward implementation kept as a behavioral
// oracle for the gap-indexed engine in baselines/heft.cpp.
//
// This is the pre-optimization code path: earliest_start() walks every
// busy segment of a worker looking for a usable gap, so placing n tasks is
// O(n * segments) per worker — quadratic overall and ~150x slower than the
// HeteroPrio hot path at n = 1e5. The optimized heft()/heft_independent()
// must produce bitwise-identical schedules; tests/test_heft_regression.cpp
// enforces that, and src/perf/perf_dag.cpp reports the speedup.

#include <span>

#include "baselines/heft.hpp"

namespace hp {

/// Reference HEFT on a DAG. Same contract as heft().
[[nodiscard]] Schedule heft_ref(const TaskGraph& graph,
                                const Platform& platform,
                                const HeftOptions& options = {});

/// Reference HEFT on independent tasks. Same contract as heft_independent().
[[nodiscard]] Schedule heft_independent_ref(std::span<const Task> tasks,
                                            const Platform& platform,
                                            const HeftOptions& options = {});

}  // namespace hp
