#pragma once
// DualHP — dual-approximation scheduler of Bleuse et al. [15], re-implemented
// from the paper's §6 description.
//
// For a guess lambda on the makespan, the algorithm either produces a
// schedule of length <= 2*lambda or proves lambda < C_max^Opt:
//   * any task longer than lambda on one resource is forced to the other
//     (infeasible if both exceed lambda);
//   * the remaining tasks are assigned to the GPUs by decreasing
//     acceleration factor while the resulting (load-balanced) makespan stays
//     within 2*lambda;
//   * the rest goes to the CPUs; the guess is feasible if every load is
//     within 2*lambda.
// The best lambda is found by binary search. For DAGs, the assignment is
// recomputed over the currently-ready set whenever tasks become ready,
// counting the residual work of executing tasks into the loads (§6.2).
//
// Priorities: tasks are dispatched per resource in decreasing priority
// (avg/min bottom levels, assigned by the caller via assign_priorities) or
// in ready order when `fifo_order` is set.

#include <span>

#include "dag/task_graph.hpp"
#include "model/platform.hpp"
#include "obs/event.hpp"
#include "sched/schedule.hpp"

namespace hp {

namespace obs {
class MetricsCollector;  // obs/profile.hpp
}

struct DualHpOptions {
  bool fifo_order = false;   ///< ignore priorities; dispatch in ready order
  int bisection_iters = 16;  ///< binary-search refinement steps on lambda
  /// Receives the finished schedule replayed as an event stream
  /// (obs::replay_schedule).
  obs::EventSink* sink = nullptr;
  /// Phase self-profiling (obs/profile.hpp): the lambda bisection, sampled.
  /// Null costs one pointer test per scope.
  obs::MetricsCollector* metrics = nullptr;
};

/// DualHP for independent tasks.
[[nodiscard]] Schedule dualhp(std::span<const Task> tasks,
                              const Platform& platform,
                              const DualHpOptions& options = {});

/// DualHP adapted to DAGs (§6.2). Graph must be finalized and acyclic; task
/// priorities must be assigned by the caller unless fifo_order is set.
[[nodiscard]] Schedule dualhp_dag(const TaskGraph& graph,
                                  const Platform& platform,
                                  const DualHpOptions& options = {});

namespace detail {

/// Result of one dual-approximation guess.
struct DualTry {
  bool feasible = false;
  /// Per candidate (same order as the `candidates` argument): chosen side.
  std::vector<Resource> side;
};

/// Attempt the assignment for guess `lambda`. `candidates` must be sorted by
/// non-increasing acceleration factor; `cpu_loads`/`gpu_loads` carry the
/// residual work of each worker (zeros for an empty platform).
[[nodiscard]] DualTry dual_try(std::span<const Task> tasks,
                               std::span<const TaskId> candidates,
                               double lambda,
                               std::span<const double> cpu_loads,
                               std::span<const double> gpu_loads);

}  // namespace detail

}  // namespace hp
