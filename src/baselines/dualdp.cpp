#include "baselines/dualdp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "obs/replay.hpp"

namespace hp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// LPT-pack `ids` (durations on resource `r`) onto the workers of type `r`;
/// returns the max load and fills starts/workers for schedule construction.
double lpt_pack(std::span<const Task> tasks, const std::vector<TaskId>& ids,
                const Platform& platform, Resource r, Schedule* schedule) {
  if (ids.empty()) return 0.0;
  std::vector<TaskId> order = ids;
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double da = Platform::time_on(tasks[static_cast<std::size_t>(a)], r);
    const double db = Platform::time_on(tasks[static_cast<std::size_t>(b)], r);
    if (da != db) return da > db;
    return a < b;
  });
  using Slot = std::pair<double, WorkerId>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (int k = 0; k < platform.count(r); ++k) {
    free_at.emplace(0.0, platform.first(r) + k);
  }
  double max_load = 0.0;
  for (TaskId id : order) {
    auto [t, w] = free_at.top();
    free_at.pop();
    const double dt = Platform::time_on(tasks[static_cast<std::size_t>(id)], r);
    if (schedule != nullptr) schedule->place(id, w, t, t + dt);
    free_at.emplace(t + dt, w);
    max_load = std::max(max_load, t + dt);
  }
  return max_load;
}

struct TryResult {
  bool feasible = false;
  std::vector<TaskId> cpu_side;
  std::vector<TaskId> gpu_side;
};

TryResult dual_dp_try(std::span<const Task> tasks, const Platform& platform,
                      double lambda, int grid) {
  TryResult result;
  const double cap = 2.0 * lambda;
  const bool has_cpu = platform.cpus() > 0;
  const bool has_gpu = platform.gpus() > 0;

  std::vector<TaskId> flexible;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    const bool cpu_over = tasks[i].cpu_time > lambda;
    const bool gpu_over = tasks[i].gpu_time > lambda;
    if (cpu_over && gpu_over) return result;
    if (cpu_over) {
      if (!has_gpu) return result;
      result.gpu_side.push_back(id);
    } else if (gpu_over) {
      if (!has_cpu) return result;
      result.cpu_side.push_back(id);
    } else {
      flexible.push_back(id);
    }
  }

  if (!has_gpu) {
    result.cpu_side.insert(result.cpu_side.end(), flexible.begin(),
                           flexible.end());
  } else if (!has_cpu) {
    result.gpu_side.insert(result.gpu_side.end(), flexible.begin(),
                           flexible.end());
  } else if (!flexible.empty()) {
    // [3]-style big/small split: the knapsack DP decides only the *big*
    // flexible tasks (q > lambda/4) — there are at most 8n of them within
    // the capacity, so the discretization waste is negligible — and the
    // small tasks are filled greedily by acceleration factor, where rounding
    // cannot matter (each is tiny relative to the capacity).
    double forced_gpu_work = 0.0;
    for (TaskId id : result.gpu_side) {
      forced_gpu_work += tasks[static_cast<std::size_t>(id)].gpu_time;
    }
    const double capacity =
        std::max(0.0, platform.gpus() * cap - forced_gpu_work);
    const double big_cutoff = lambda / 4.0;

    std::vector<TaskId> big, small;
    for (TaskId id : flexible) {
      (tasks[static_cast<std::size_t>(id)].gpu_time > big_cutoff ? big : small)
          .push_back(id);
    }

    double used_capacity = 0.0;
    if (!big.empty() && capacity > 0.0) {
      const double cell = capacity / grid;
      std::vector<double> dp(static_cast<std::size_t>(grid) + 1, 0.0);
      std::vector<std::vector<char>> choice(
          big.size(), std::vector<char>(static_cast<std::size_t>(grid) + 1, 0));
      for (std::size_t t = 0; t < big.size(); ++t) {
        const Task& task = tasks[static_cast<std::size_t>(big[t])];
        const auto weight =
            static_cast<long long>(std::ceil(task.gpu_time / cell));
        for (long long c = grid; c >= 0; --c) {
          double best = dp[static_cast<std::size_t>(c)] + task.cpu_time;
          char pick = 0;
          if (weight <= c) {
            const double sel = dp[static_cast<std::size_t>(c - weight)];
            if (sel < best) {
              best = sel;
              pick = 1;
            }
          }
          dp[static_cast<std::size_t>(c)] = best;
          choice[t][static_cast<std::size_t>(c)] = pick;
        }
      }
      long long c = grid;
      for (std::size_t t = big.size(); t-- > 0;) {
        const Task& task = tasks[static_cast<std::size_t>(big[t])];
        if (choice[t][static_cast<std::size_t>(c)]) {
          result.gpu_side.push_back(big[t]);
          used_capacity += task.gpu_time;
          c -= static_cast<long long>(std::ceil(task.gpu_time / cell));
        } else {
          result.cpu_side.push_back(big[t]);
        }
      }
    } else {
      result.cpu_side.insert(result.cpu_side.end(), big.begin(), big.end());
    }

    (void)used_capacity;
    // Small tasks: greedy by decreasing acceleration factor onto the
    // least-loaded GPU while the *resulting per-GPU load* stays within
    // 2*lambda (packing-aware, like DualHP's fill — an aggregate-capacity
    // fill would leave no slack for the final LPT check).
    std::vector<double> gpu_loads;
    {
      // Seed with the LPT packing of the forced + big GPU tasks.
      Schedule probe(tasks.size());
      lpt_pack(tasks, result.gpu_side, platform, Resource::kGpu, &probe);
      gpu_loads.assign(static_cast<std::size_t>(platform.gpus()), 0.0);
      for (TaskId id : result.gpu_side) {
        const Placement& p = probe.placement(id);
        auto& load = gpu_loads[static_cast<std::size_t>(
            p.worker - platform.first(Resource::kGpu))];
        load = std::max(load, p.end);
      }
    }
    std::sort(small.begin(), small.end(), [&](TaskId a, TaskId b) {
      const double ra = tasks[static_cast<std::size_t>(a)].accel();
      const double rb = tasks[static_cast<std::size_t>(b)].accel();
      if (ra != rb) return ra > rb;
      return a < b;
    });
    for (TaskId id : small) {
      const double q = tasks[static_cast<std::size_t>(id)].gpu_time;
      auto least = std::min_element(gpu_loads.begin(), gpu_loads.end());
      if (*least + q <= cap) {
        result.gpu_side.push_back(id);
        *least += q;
      } else {
        result.cpu_side.push_back(id);
      }
    }
  }

  // Concrete per-machine packing decides feasibility.
  Schedule probe(tasks.size());
  const double cpu_load =
      lpt_pack(tasks, result.cpu_side, platform, Resource::kCpu, &probe);
  const double gpu_load =
      lpt_pack(tasks, result.gpu_side, platform, Resource::kGpu, &probe);
  result.feasible = cpu_load <= cap + 1e-12 && gpu_load <= cap + 1e-12;
  return result;
}

}  // namespace

Schedule dualdp(std::span<const Task> tasks, const Platform& platform,
                const DualDpOptions& options) {
  Schedule schedule(tasks.size());
  if (tasks.empty()) return schedule;

  double lo = 0.0;
  for (const Task& t : tasks) lo = std::max(lo, t.min_time());
  double hi = std::max(lo, 1e-12);
  TryResult best = dual_dp_try(tasks, platform, hi, options.capacity_grid);
  int guard = 0;
  while (!best.feasible && guard++ < 200) {
    hi *= 1.5;
    best = dual_dp_try(tasks, platform, hi, options.capacity_grid);
  }
  assert(best.feasible && "dualdp upper-bound search failed");
  for (int it = 0; it < options.bisection_iters; ++it) {
    const double mid = 0.5 * (lo + hi);
    TryResult attempt = dual_dp_try(tasks, platform, mid, options.capacity_grid);
    if (attempt.feasible) {
      best = std::move(attempt);
      hi = mid;
    } else {
      lo = mid;
    }
  }

  lpt_pack(tasks, best.cpu_side, platform, Resource::kCpu, &schedule);
  lpt_pack(tasks, best.gpu_side, platform, Resource::kGpu, &schedule);
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

}  // namespace hp
