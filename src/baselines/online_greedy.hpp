#pragma once
// Online greedy baselines for two sets of identical machines — the
// algorithm class of Imreh [14] cited in §3. Tasks are processed in arrival
// (id) order with no lookahead and no migration; each rule differs in how
// it picks the resource side:
//   * EFT       — the worker (of any type) finishing the task first; the
//                 "historical" scheduler of §2.1 without priorities;
//   * threshold — pure affinity: GPU side iff rho >= theta (then
//                 least-loaded worker of the side); no load awareness;
//   * balance   — the side whose *normalized* load (per-worker average
//                 after adding the task) stays smaller; a cheap proxy of
//                 the area bound's equalization.
// None of these has a constant approximation factor on unrelated machines
// (no spoliation); the bench shows where each one loses against HeteroPrio.

#include <span>

#include "model/platform.hpp"
#include "obs/event.hpp"
#include "sched/schedule.hpp"

namespace hp {

enum class OnlineRule {
  kEft,
  kThreshold,
  kBalance,
};

[[nodiscard]] const char* online_rule_name(OnlineRule rule) noexcept;

struct OnlineGreedyOptions {
  OnlineRule rule = OnlineRule::kEft;
  double threshold = 1.0;  ///< rho cutoff for OnlineRule::kThreshold
  /// Receives the finished schedule replayed as an event stream
  /// (obs::replay_schedule).
  obs::EventSink* sink = nullptr;
};

/// Schedule independent tasks in id order with the chosen rule.
[[nodiscard]] Schedule online_greedy(std::span<const Task> tasks,
                                     const Platform& platform,
                                     const OnlineGreedyOptions& options = {});

}  // namespace hp
