#include "baselines/dualhp.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "bounds/area_bound.hpp"
#include "dag/ready_tracker.hpp"
#include "model/task_soa.hpp"
#include "obs/profile.hpp"
#include "obs/replay.hpp"
#include "sim/event_queue.hpp"
#include "sim/worker_pool.hpp"
#include "util/arena.hpp"
#include "util/key_sort.hpp"

namespace hp {

namespace detail {

namespace {

/// Min-heap of (load, worker index) used for least-loaded placement.
/// Arena-backed and reusable: reset() refills it from a load vector without
/// touching the heap allocator.
class LoadHeap {
 public:
  explicit LoadHeap(util::Arena& arena) : heap_(arena) {}

  void reset(std::span<const double> initial) {
    heap_.clear();
    heap_.reserve(initial.size());
    for (std::size_t i = 0; i < initial.size(); ++i) {
      heap_.push_back({initial[i], static_cast<int>(i)});
    }
    std::make_heap(heap_.begin(), heap_.end(), greater);
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] double min_load() const noexcept {
    return heap_.begin()->load;
  }

  /// Add `dt` to the least-loaded worker. Returns the new load.
  double push_least(double dt) {
    std::pop_heap(heap_.begin(), heap_.end(), greater);
    heap_.back().load += dt;
    const double load = heap_.back().load;
    std::push_heap(heap_.begin(), heap_.end(), greater);
    return load;
  }

 private:
  // Trivially copyable stand-in for pair<double,int> (ArenaVector requires
  // it); `greater` is pair's lexicographic std::greater<>, so heap shape and
  // tie-breaks match the seed implementation exactly.
  struct Slot {
    double load;
    int worker;
  };
  static constexpr auto greater = [](const Slot& a, const Slot& b) {
    if (a.load != b.load) return a.load > b.load;
    return a.worker > b.worker;
  };

  util::ArenaVector<Slot> heap_;
};

/// Scratch buffers of one dual-approximation solve, hoisted out of the
/// per-lambda attempt: dual_try runs once per bisection step and — in the
/// DAG scheduler — the whole bisection reruns every time a task becomes
/// ready, so per-call vector churn dominated the profile. All storage comes
/// from the run's arena and is reclaimed with the run's ArenaScope.
struct DualScratch {
  explicit DualScratch(util::Arena& arena)
      : cpu(arena), gpu(arena), forced_cpu(arena), forced_gpu(arena),
        flexible(arena) {}

  LoadHeap cpu;
  LoadHeap gpu;
  util::ArenaVector<std::uint32_t> forced_cpu;
  util::ArenaVector<std::uint32_t> forced_gpu;
  util::ArenaVector<std::uint32_t> flexible;
};

/// dual_try with caller-owned scratch and result buffers (the allocation-free
/// hot path; the public dual_try wraps it). Durations come from the
/// de-interleaved per-task arrays — the bisection re-reads each candidate's
/// two doubles once per lambda, so they ride in two cache-dense arrays
/// instead of strided Task records.
void dual_try_into(std::span<const double> cpu_times,
                   std::span<const double> gpu_times,
                   std::span<const TaskId> candidates, double lambda,
                   std::span<const double> cpu_loads,
                   std::span<const double> gpu_loads, DualScratch& scratch,
                   DualTry& result) {
  result.feasible = false;
  result.side.assign(candidates.size(), Resource::kCpu);
  const double cap = 2.0 * lambda;
  const bool has_cpu = !cpu_loads.empty();
  const bool has_gpu = !gpu_loads.empty();

  scratch.cpu.reset(cpu_loads);
  scratch.gpu.reset(gpu_loads);

  // Pass 1: forced assignments (task longer than lambda on one resource).
  // Forced tasks are placed by decreasing duration for tighter packing.
  auto& forced_cpu = scratch.forced_cpu;
  auto& forced_gpu = scratch.forced_gpu;
  auto& flexible = scratch.flexible;
  forced_cpu.clear();
  forced_gpu.clear();
  flexible.clear();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto id = static_cast<std::size_t>(candidates[i]);
    const bool cpu_over = cpu_times[id] > lambda;
    const bool gpu_over = gpu_times[id] > lambda;
    if (cpu_over && gpu_over) return;  // lambda < OPT
    if (cpu_over) {
      if (!has_gpu) return;
      forced_gpu.push_back(static_cast<std::uint32_t>(i));
    } else if (gpu_over) {
      if (!has_cpu) return;
      forced_cpu.push_back(static_cast<std::uint32_t>(i));
    } else {
      flexible.push_back(static_cast<std::uint32_t>(i));
    }
  }
  const auto by_duration_desc = [&](std::span<const double> times) {
    return [times, candidates](std::uint32_t a, std::uint32_t b) {
      const double da = times[static_cast<std::size_t>(candidates[a])];
      const double db = times[static_cast<std::size_t>(candidates[b])];
      if (da != db) return da > db;
      return a < b;
    };
  };
  std::sort(forced_gpu.begin(), forced_gpu.end(), by_duration_desc(gpu_times));
  std::sort(forced_cpu.begin(), forced_cpu.end(), by_duration_desc(cpu_times));
  for (const std::uint32_t i : forced_gpu) {
    const auto id = static_cast<std::size_t>(candidates[i]);
    if (scratch.gpu.push_least(gpu_times[id]) > cap) return;
    result.side[i] = Resource::kGpu;
  }
  for (const std::uint32_t i : forced_cpu) {
    const auto id = static_cast<std::size_t>(candidates[i]);
    if (scratch.cpu.push_least(cpu_times[id]) > cap) return;
    result.side[i] = Resource::kCpu;
  }

  // Pass 2: flexible tasks go to the GPUs by decreasing acceleration factor
  // while the resulting makespan stays within 2*lambda (candidates are
  // pre-sorted by rho, so `flexible` is too).
  std::size_t spill_from = flexible.size();
  for (std::size_t j = 0; j < flexible.size(); ++j) {
    const std::uint32_t i = flexible[j];
    const auto id = static_cast<std::size_t>(candidates[i]);
    if (!has_gpu || scratch.gpu.min_load() + gpu_times[id] > cap) {
      spill_from = j;
      break;
    }
    scratch.gpu.push_least(gpu_times[id]);
    result.side[i] = Resource::kGpu;
  }

  // Pass 3: everything else to the CPUs.
  for (std::size_t j = spill_from; j < flexible.size(); ++j) {
    const std::uint32_t i = flexible[j];
    const auto id = static_cast<std::size_t>(candidates[i]);
    if (!has_cpu || scratch.cpu.push_least(cpu_times[id]) > cap) return;
    result.side[i] = Resource::kCpu;
  }
  result.feasible = true;
}

/// De-interleave cpu/gpu durations of all tasks into arena arrays.
struct TaskTimes {
  std::span<const double> cpu;
  std::span<const double> gpu;
};

TaskTimes split_times(std::span<const Task> tasks, util::Arena& arena) {
  double* cpu = arena.alloc<double>(tasks.size());
  double* gpu = arena.alloc<double>(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    cpu[i] = tasks[i].cpu_time;
    gpu[i] = tasks[i].gpu_time;
  }
  return TaskTimes{{cpu, tasks.size()}, {gpu, tasks.size()}};
}

}  // namespace

DualTry dual_try(std::span<const Task> tasks,
                 std::span<const TaskId> candidates, double lambda,
                 std::span<const double> cpu_loads,
                 std::span<const double> gpu_loads) {
  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope scope(arena);
  const TaskTimes times = split_times(tasks, arena);
  DualScratch scratch(arena);
  DualTry result;
  dual_try_into(times.cpu, times.gpu, candidates, lambda, cpu_loads,
                gpu_loads, scratch, result);
  return result;
}

namespace {

/// Binary search for the smallest feasible lambda; writes the best feasible
/// assignment found into `best`. `warm` seeds the upper-bound search.
/// `scratch` and the two DualTry buffers are reused across all attempts.
void search_lambda(const TaskTimes& times, std::span<const TaskId> candidates,
                   std::span<const double> cpu_loads,
                   std::span<const double> gpu_loads, double lower_bound,
                   double warm, int iters, double* best_lambda,
                   DualScratch& scratch, DualTry& best, DualTry& attempt) {
  double lo = std::max(lower_bound, 0.0);
  double hi = std::max({warm, lo, 1e-12});
  dual_try_into(times.cpu, times.gpu, candidates, hi, cpu_loads, gpu_loads,
                scratch, best);
  int guard = 0;
  while (!best.feasible && guard++ < 200) {
    hi *= 1.5;
    dual_try_into(times.cpu, times.gpu, candidates, hi, cpu_loads, gpu_loads,
                  scratch, best);
  }
  assert(best.feasible && "dual approximation upper bound search failed");
  double best_l = hi;
  for (int it = 0; it < iters; ++it) {
    const double mid = 0.5 * (lo + hi);
    dual_try_into(times.cpu, times.gpu, candidates, mid, cpu_loads, gpu_loads,
                  scratch, attempt);
    if (attempt.feasible) {
      std::swap(best, attempt);
      best_l = mid;
      hi = mid;
    } else {
      lo = mid;
    }
  }
  if (best_lambda != nullptr) *best_lambda = best_l;
}

/// Packed non-increasing-accel keys for all tasks: ascending
/// (descending_key(accel), id) is exactly the old comparator (accel desc,
/// id asc), so orders stay bitwise identical.
std::span<const std::uint64_t> accel_keys(const TaskTimes& times,
                                          util::Arena& arena) {
  auto* keys = arena.alloc<std::uint64_t>(times.cpu.size());
  for (std::size_t i = 0; i < times.cpu.size(); ++i) {
    keys[i] = soa::descending_key(times.cpu[i] / times.gpu[i]);
  }
  return {keys, times.cpu.size()};
}

}  // namespace
}  // namespace detail

Schedule dualhp(std::span<const Task> tasks, const Platform& platform,
                const DualHpOptions& options) {
  Schedule schedule(tasks.size());
  if (tasks.empty()) return schedule;

  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope scope(arena);
  const obs::PhaseScope engine_scope(options.metrics, obs::Phase::kEngine);
  const detail::TaskTimes times = detail::split_times(tasks, arena);
  const std::span<const std::uint64_t> rho_key =
      detail::accel_keys(times, arena);

  const std::span<util::KeyId> by_rho{arena.alloc<util::KeyId>(tasks.size()),
                                      tasks.size()};
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    by_rho[i] = util::KeyId{rho_key[i], static_cast<std::uint32_t>(i)};
  }
  util::sort_key_id(by_rho, arena);
  const std::span<TaskId> candidates{arena.alloc<TaskId>(tasks.size()),
                                     tasks.size()};
  for (std::size_t i = 0; i < by_rho.size(); ++i) {
    candidates[i] = static_cast<TaskId>(by_rho[i].id);
  }

  const std::span<const double> cpu_loads =
      arena.alloc_zeroed<double>(static_cast<std::size_t>(platform.cpus()));
  const std::span<const double> gpu_loads =
      arena.alloc_zeroed<double>(static_cast<std::size_t>(platform.gpus()));
  // Feasibility floor: lambda below any task's min time is always rejected
  // (the task exceeds lambda on both resources). The minimal feasible
  // lambda is typically well below OPT — around AreaBound/2 — which is what
  // makes the final 2*lambda schedule competitive; do NOT seed with the
  // area bound itself.
  double lb = 0.0;
  for (const Task& t : tasks) lb = std::max(lb, t.min_time());
  const double warm = opt_lower_bound(tasks, platform);
  detail::DualScratch scratch(arena);
  detail::DualTry best, attempt;
  {
    const obs::PhaseScope bisect_scope(options.metrics,
                                       obs::Phase::kDualHpBisection);
    detail::search_lambda(times, candidates, cpu_loads, gpu_loads, lb, warm,
                          options.bisection_iters, nullptr, scratch, best,
                          attempt);
  }

  // Concretize: within each resource type, dispatch tasks by priority (or id
  // order for fifo) onto the least-loaded worker. Priority desc / id asc is
  // ascending (descending_key(priority), id) packed; fifo collapses to the
  // id tie-break alone.
  util::ArenaVector<util::KeyId> sides[2] = {util::ArenaVector<util::KeyId>(arena),
                                             util::ArenaVector<util::KeyId>(arena)};
  sides[0].reserve(tasks.size());
  sides[1].reserve(tasks.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto id = static_cast<std::size_t>(candidates[i]);
    const std::uint64_t key =
        options.fifo_order ? 0 : soa::descending_key(tasks[id].priority);
    sides[static_cast<std::size_t>(best.side[i])].push_back(
        util::KeyId{key, static_cast<std::uint32_t>(id)});
  }
  util::sort_key_id(sides[0].span(), arena);
  util::sort_key_id(sides[1].span(), arena);

  const auto lay_out = [&](std::span<const util::KeyId> ids, Resource r) {
    if (ids.empty()) return;
    using Slot = std::pair<double, WorkerId>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
    const WorkerId first = platform.first(r);
    for (int k = 0; k < platform.count(r); ++k) {
      free_at.emplace(0.0, first + k);
    }
    const std::span<const double> dt_of =
        r == Resource::kCpu ? times.cpu : times.gpu;
    for (const util::KeyId& entry : ids) {
      auto [t, w] = free_at.top();
      free_at.pop();
      const double dt = dt_of[entry.id];
      schedule.place(static_cast<TaskId>(entry.id), w, t, t + dt);
      free_at.emplace(t + dt, w);
    }
  };
  lay_out(sides[static_cast<std::size_t>(Resource::kCpu)].span(),
          Resource::kCpu);
  lay_out(sides[static_cast<std::size_t>(Resource::kGpu)].span(),
          Resource::kGpu);
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

Schedule dualhp_dag(const TaskGraph& graph, const Platform& platform,
                    const DualHpOptions& options) {
  assert(graph.finalized());
  const std::span<const Task> tasks = graph.tasks();
  Schedule schedule(tasks.size());
  if (tasks.empty()) return schedule;

  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope scope(arena);
  const obs::PhaseScope engine_scope(options.metrics, obs::Phase::kEngine);
  const detail::TaskTimes times = detail::split_times(tasks, arena);
  const std::span<const std::uint64_t> rho_key =
      detail::accel_keys(times, arena);

  sim::WorkerPool pool(platform);
  sim::EventQueue<WorkerId> events;
  ReadyTracker tracker(graph);

  // The ready set, kept sorted by (accel desc, id) at all times: releases
  // binary-search their slot, starts binary-search-and-erase theirs. The
  // per-ready-change full re-sort of the seed implementation is gone — the
  // bisection consumes the list as-is.
  util::ArenaVector<util::KeyId> ready(arena, tasks.size());
  const auto ready_insert = [&](TaskId id) {
    const util::KeyId entry{rho_key[static_cast<std::size_t>(id)],
                            static_cast<std::uint32_t>(id)};
    const auto* pos = std::lower_bound(
        ready.begin(), ready.end(), entry,
        [](const util::KeyId& a, const util::KeyId& b) {
          return a.key != b.key ? a.key < b.key : a.id < b.id;
        });
    ready.insert(const_cast<util::KeyId*>(pos), entry);
  };
  const auto ready_erase = [&](TaskId id) {
    const util::KeyId entry{rho_key[static_cast<std::size_t>(id)],
                            static_cast<std::uint32_t>(id)};
    const auto* pos = std::lower_bound(
        ready.begin(), ready.end(), entry,
        [](const util::KeyId& a, const util::KeyId& b) {
          return a.key != b.key ? a.key < b.key : a.id < b.id;
        });
    assert(pos != ready.end() && pos->id == entry.id);
    ready.erase(const_cast<util::KeyId*>(pos));
  };

  // Each task becomes ready exactly once, so sequence numbers stay below
  // tasks.size() and the inverse map fits a flat array.
  const std::span<std::int64_t> ready_seq =
      arena.alloc_zeroed<std::int64_t>(tasks.size());
  const std::span<TaskId> task_of_seq = arena.alloc_zeroed<TaskId>(tasks.size());
  std::int64_t next_seq = 0;
  const auto assign_seq = [&](TaskId id) {
    ready_seq[static_cast<std::size_t>(id)] = next_seq;
    task_of_seq[static_cast<std::size_t>(next_seq)] = id;
    ++next_seq;
  };
  for (TaskId id : tracker.initially_ready()) {
    ready_insert(id);
    assign_seq(id);
  }

  std::size_t completed = 0;
  double now = 0.0;
  double warm_lambda = opt_lower_bound(tasks, platform) /
                       std::max(1.0, static_cast<double>(tasks.size()));

  // Resource side chosen by the last dual-approximation solve. §6.2: the
  // assignment is recomputed "each time a task becomes ready"; between
  // ready-set changes, dispatching reuses the last assignment.
  const std::span<Resource> assigned_side =
      arena.alloc_zeroed<Resource>(tasks.size());
  bool ready_changed = true;

  // Hoisted scratch for the dispatch hot loop: the residual-load vectors,
  // the bisection buffers and the per-type dispatch lists live in the arena
  // and are reused across every ready-set change.
  detail::DualScratch scratch(arena);
  detail::DualTry best, attempt;
  const std::span<double> cpu_loads =
      arena.alloc_zeroed<double>(static_cast<std::size_t>(platform.cpus()));
  const std::span<double> gpu_loads =
      arena.alloc_zeroed<double>(static_cast<std::size_t>(platform.gpus()));
  util::ArenaVector<TaskId> candidates(arena, tasks.size());
  util::ArenaVector<util::KeyId> by_type[2] = {
      util::ArenaVector<util::KeyId>(arena, tasks.size()),
      util::ArenaVector<util::KeyId>(arena, tasks.size())};
  util::ArenaVector<TaskId> started(
      arena, static_cast<std::size_t>(platform.workers()));
  std::vector<WorkerId> idle;

  auto dispatch = [&] {
    if (ready.empty()) return;
    pool.idle_workers_gpu_first(idle);
    if (idle.empty()) return;

    if (ready_changed) {
      // Residual loads of each worker at `now`.
      std::fill(cpu_loads.begin(), cpu_loads.end(), 0.0);
      std::fill(gpu_loads.begin(), gpu_loads.end(), 0.0);
      double max_residual = 0.0;
      for (WorkerId w = 0; w < platform.workers(); ++w) {
        if (!pool.busy(w)) continue;
        const double residual = pool.running(w).finish - now;
        max_residual = std::max(max_residual, residual);
        if (platform.type_of(w) == Resource::kCpu) {
          cpu_loads[static_cast<std::size_t>(w)] = residual;
        } else {
          gpu_loads[static_cast<std::size_t>(
              w - platform.first(Resource::kGpu))] = residual;
        }
      }

      // `ready` is already accel-sorted; peel the ids off.
      candidates.clear();
      for (const util::KeyId& entry : ready) {
        candidates.push_back(static_cast<TaskId>(entry.id));
      }

      double lb = 0.5 * max_residual;
      for (const TaskId id : candidates) {
        lb = std::max(lb, tasks[static_cast<std::size_t>(id)].min_time());
      }
      {
        // Sampled per-item phase: the bisection reruns on every ready-set
        // change, which is per-task-granular on wide DAGs.
        const obs::PhaseScope bisect_scope(options.metrics,
                                           obs::Phase::kDualHpBisection);
        detail::search_lambda(times, candidates.span(), cpu_loads, gpu_loads,
                              lb, warm_lambda, options.bisection_iters,
                              &warm_lambda, scratch, best, attempt);
      }
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        assigned_side[static_cast<std::size_t>(candidates[i])] = best.side[i];
      }
      ready_changed = false;
    }

    // Dispatch per resource type in priority (or ready) order: ascending
    // (descending_key(priority), ready_seq) packed — bitwise the old
    // (priority desc, ready_seq asc) comparator; fifo keeps only the
    // ready_seq tie-break.
    by_type[0].clear();
    by_type[1].clear();
    for (const util::KeyId& entry : ready) {
      const auto id = static_cast<std::size_t>(entry.id);
      const std::uint64_t key =
          options.fifo_order ? 0 : soa::descending_key(tasks[id].priority);
      by_type[static_cast<std::size_t>(assigned_side[id])].push_back(
          util::KeyId{key, static_cast<std::uint32_t>(ready_seq[id])});
    }
    util::sort_key_id(by_type[0].span(), arena);
    util::sort_key_id(by_type[1].span(), arena);
    // The sort key carries ready_seq, not the task id; invert back through
    // the (still tiny) sequence->task table built on the fly.
    started.clear();
    std::size_t next_of_type[2] = {0, 0};
    for (WorkerId w : idle) {
      const auto type = static_cast<std::size_t>(platform.type_of(w));
      auto& cursor = next_of_type[type];
      auto& pending = by_type[type];
      if (cursor >= pending.size()) continue;
      const TaskId id = task_of_seq[pending[cursor++].id];
      const double dt =
          (platform.type_of(w) == Resource::kCpu ? times.cpu
                                                 : times.gpu)[
              static_cast<std::size_t>(id)];
      events.push(pool.start(w, id, now, dt), w);
      started.push_back(id);
    }
    for (const TaskId id : started) ready_erase(id);
  };

  dispatch();
  while (completed < tasks.size()) {
    assert(!events.empty() && "deadlock in DualHP DAG simulation");
    const double t = events.top().time;
    now = t;
    while (!events.empty() && events.top().time == t) {
      const auto ev = events.pop();
      const WorkerId w = ev.payload;
      const sim::Running done = pool.release(w);
      schedule.place(done.task, w, done.start, done.finish);
      ++completed;
      for (TaskId released : tracker.complete(done.task)) {
        ready_insert(released);
        assign_seq(released);
        ready_changed = true;
      }
    }
    dispatch();
  }
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

}  // namespace hp
