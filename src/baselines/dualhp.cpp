#include "baselines/dualhp.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

#include "bounds/area_bound.hpp"
#include "dag/ready_tracker.hpp"
#include "obs/replay.hpp"
#include "sim/event_queue.hpp"
#include "sim/worker_pool.hpp"

namespace hp {

namespace detail {

namespace {

/// Min-heap of (load, worker index) used for least-loaded placement.
/// Reusable: reset() refills it from a load vector without reallocating.
class LoadHeap {
 public:
  void reset(std::span<const double> initial) {
    heap_.clear();
    for (std::size_t i = 0; i < initial.size(); ++i) {
      heap_.emplace_back(initial[i], static_cast<int>(i));
    }
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] double min_load() const noexcept { return heap_.front().first; }

  /// Add `dt` to the least-loaded worker. Returns the new load.
  double push_least(double dt) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.back().first += dt;
    const double load = heap_.back().first;
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    return load;
  }

 private:
  std::vector<std::pair<double, int>> heap_;
};

/// Scratch buffers of one dual-approximation solve, hoisted out of the
/// per-lambda attempt: dual_try runs once per bisection step and — in the
/// DAG scheduler — the whole bisection reruns every time a task becomes
/// ready, so per-call vector churn dominated the profile.
struct DualScratch {
  LoadHeap cpu;
  LoadHeap gpu;
  std::vector<std::size_t> forced_cpu;
  std::vector<std::size_t> forced_gpu;
  std::vector<std::size_t> flexible;
};

/// dual_try with caller-owned scratch and result buffers (the allocation-free
/// hot path; the public dual_try wraps it).
void dual_try_into(std::span<const Task> tasks,
                   std::span<const TaskId> candidates, double lambda,
                   std::span<const double> cpu_loads,
                   std::span<const double> gpu_loads, DualScratch& scratch,
                   DualTry& result) {
  result.feasible = false;
  result.side.assign(candidates.size(), Resource::kCpu);
  const double cap = 2.0 * lambda;
  const bool has_cpu = !cpu_loads.empty();
  const bool has_gpu = !gpu_loads.empty();

  scratch.cpu.reset(cpu_loads);
  scratch.gpu.reset(gpu_loads);

  // Pass 1: forced assignments (task longer than lambda on one resource).
  // Forced tasks are placed by decreasing duration for tighter packing.
  auto& forced_cpu = scratch.forced_cpu;
  auto& forced_gpu = scratch.forced_gpu;
  auto& flexible = scratch.flexible;
  forced_cpu.clear();
  forced_gpu.clear();
  flexible.clear();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Task& t = tasks[static_cast<std::size_t>(candidates[i])];
    const bool cpu_over = t.cpu_time > lambda;
    const bool gpu_over = t.gpu_time > lambda;
    if (cpu_over && gpu_over) return;  // lambda < OPT
    if (cpu_over) {
      if (!has_gpu) return;
      forced_gpu.push_back(i);
    } else if (gpu_over) {
      if (!has_cpu) return;
      forced_cpu.push_back(i);
    } else {
      flexible.push_back(i);
    }
  }
  auto by_duration_desc = [&](Resource r) {
    return [&tasks, &candidates, r](std::size_t a, std::size_t b) {
      const double da =
          Platform::time_on(tasks[static_cast<std::size_t>(candidates[a])], r);
      const double db =
          Platform::time_on(tasks[static_cast<std::size_t>(candidates[b])], r);
      if (da != db) return da > db;
      return a < b;
    };
  };
  std::sort(forced_gpu.begin(), forced_gpu.end(), by_duration_desc(Resource::kGpu));
  std::sort(forced_cpu.begin(), forced_cpu.end(), by_duration_desc(Resource::kCpu));
  for (std::size_t i : forced_gpu) {
    const Task& t = tasks[static_cast<std::size_t>(candidates[i])];
    if (scratch.gpu.push_least(t.gpu_time) > cap) return;
    result.side[i] = Resource::kGpu;
  }
  for (std::size_t i : forced_cpu) {
    const Task& t = tasks[static_cast<std::size_t>(candidates[i])];
    if (scratch.cpu.push_least(t.cpu_time) > cap) return;
    result.side[i] = Resource::kCpu;
  }

  // Pass 2: flexible tasks go to the GPUs by decreasing acceleration factor
  // while the resulting makespan stays within 2*lambda (candidates are
  // pre-sorted by rho, so `flexible` is too).
  std::size_t spill_from = flexible.size();
  for (std::size_t j = 0; j < flexible.size(); ++j) {
    const std::size_t i = flexible[j];
    const Task& t = tasks[static_cast<std::size_t>(candidates[i])];
    if (!has_gpu || scratch.gpu.min_load() + t.gpu_time > cap) {
      spill_from = j;
      break;
    }
    scratch.gpu.push_least(t.gpu_time);
    result.side[i] = Resource::kGpu;
  }

  // Pass 3: everything else to the CPUs.
  for (std::size_t j = spill_from; j < flexible.size(); ++j) {
    const std::size_t i = flexible[j];
    const Task& t = tasks[static_cast<std::size_t>(candidates[i])];
    if (!has_cpu || scratch.cpu.push_least(t.cpu_time) > cap) return;
    result.side[i] = Resource::kCpu;
  }
  result.feasible = true;
}

}  // namespace

DualTry dual_try(std::span<const Task> tasks,
                 std::span<const TaskId> candidates, double lambda,
                 std::span<const double> cpu_loads,
                 std::span<const double> gpu_loads) {
  DualScratch scratch;
  DualTry result;
  dual_try_into(tasks, candidates, lambda, cpu_loads, gpu_loads, scratch,
                result);
  return result;
}

namespace {

/// Sort ids by non-increasing acceleration factor, tie by id.
void sort_by_accel(std::span<const Task> tasks, std::vector<TaskId>& ids) {
  std::sort(ids.begin(), ids.end(), [&](TaskId a, TaskId b) {
    const double ra = tasks[static_cast<std::size_t>(a)].accel();
    const double rb = tasks[static_cast<std::size_t>(b)].accel();
    if (ra != rb) return ra > rb;
    return a < b;
  });
}

/// Binary search for the smallest feasible lambda; writes the best feasible
/// assignment found into `best`. `warm` seeds the upper-bound search.
/// `scratch` and the two DualTry buffers are reused across all attempts.
void search_lambda(std::span<const Task> tasks,
                   std::span<const TaskId> candidates,
                   std::span<const double> cpu_loads,
                   std::span<const double> gpu_loads, double lower_bound,
                   double warm, int iters, double* best_lambda,
                   DualScratch& scratch, DualTry& best, DualTry& attempt) {
  double lo = std::max(lower_bound, 0.0);
  double hi = std::max({warm, lo, 1e-12});
  dual_try_into(tasks, candidates, hi, cpu_loads, gpu_loads, scratch, best);
  int guard = 0;
  while (!best.feasible && guard++ < 200) {
    hi *= 1.5;
    dual_try_into(tasks, candidates, hi, cpu_loads, gpu_loads, scratch, best);
  }
  assert(best.feasible && "dual approximation upper bound search failed");
  double best_l = hi;
  for (int it = 0; it < iters; ++it) {
    const double mid = 0.5 * (lo + hi);
    dual_try_into(tasks, candidates, mid, cpu_loads, gpu_loads, scratch,
                  attempt);
    if (attempt.feasible) {
      std::swap(best, attempt);
      best_l = mid;
      hi = mid;
    } else {
      lo = mid;
    }
  }
  if (best_lambda != nullptr) *best_lambda = best_l;
}

}  // namespace
}  // namespace detail

Schedule dualhp(std::span<const Task> tasks, const Platform& platform,
                const DualHpOptions& options) {
  Schedule schedule(tasks.size());
  if (tasks.empty()) return schedule;

  std::vector<TaskId> candidates(tasks.size());
  std::iota(candidates.begin(), candidates.end(), TaskId{0});
  detail::sort_by_accel(tasks, candidates);

  const std::vector<double> cpu_loads(static_cast<std::size_t>(platform.cpus()),
                                      0.0);
  const std::vector<double> gpu_loads(static_cast<std::size_t>(platform.gpus()),
                                      0.0);
  // Feasibility floor: lambda below any task's min time is always rejected
  // (the task exceeds lambda on both resources). The minimal feasible
  // lambda is typically well below OPT — around AreaBound/2 — which is what
  // makes the final 2*lambda schedule competitive; do NOT seed with the
  // area bound itself.
  double lb = 0.0;
  for (const Task& t : tasks) lb = std::max(lb, t.min_time());
  const double warm = opt_lower_bound(tasks, platform);
  detail::DualScratch scratch;
  detail::DualTry best, attempt;
  detail::search_lambda(tasks, candidates, cpu_loads, gpu_loads, lb, warm,
                        options.bisection_iters, nullptr, scratch, best,
                        attempt);

  // Concretize: within each resource type, dispatch tasks by priority (or id
  // order for fifo) onto the least-loaded worker.
  std::vector<TaskId> cpu_tasks, gpu_tasks;
  cpu_tasks.reserve(candidates.size());
  gpu_tasks.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    (best.side[i] == Resource::kCpu ? cpu_tasks : gpu_tasks)
        .push_back(candidates[i]);
  }
  auto dispatch_order = [&](std::vector<TaskId>& ids) {
    std::sort(ids.begin(), ids.end(), [&](TaskId a, TaskId b) {
      if (!options.fifo_order) {
        const double pa = tasks[static_cast<std::size_t>(a)].priority;
        const double pb = tasks[static_cast<std::size_t>(b)].priority;
        if (pa != pb) return pa > pb;
      }
      return a < b;
    });
  };
  dispatch_order(cpu_tasks);
  dispatch_order(gpu_tasks);

  auto lay_out = [&](const std::vector<TaskId>& ids, Resource r) {
    if (ids.empty()) return;
    using Slot = std::pair<double, WorkerId>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
    const WorkerId first = platform.first(r);
    for (int k = 0; k < platform.count(r); ++k) {
      free_at.emplace(0.0, first + k);
    }
    for (TaskId id : ids) {
      auto [t, w] = free_at.top();
      free_at.pop();
      const double dt =
          Platform::time_on(tasks[static_cast<std::size_t>(id)], r);
      schedule.place(id, w, t, t + dt);
      free_at.emplace(t + dt, w);
    }
  };
  lay_out(cpu_tasks, Resource::kCpu);
  lay_out(gpu_tasks, Resource::kGpu);
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

Schedule dualhp_dag(const TaskGraph& graph, const Platform& platform,
                    const DualHpOptions& options) {
  assert(graph.finalized());
  const std::span<const Task> tasks = graph.tasks();
  Schedule schedule(tasks.size());
  if (tasks.empty()) return schedule;

  sim::WorkerPool pool(platform);
  sim::EventQueue<WorkerId> events;
  ReadyTracker tracker(graph);

  std::vector<TaskId> ready;  // in becoming-ready order
  ready.reserve(tasks.size());
  std::vector<std::int64_t> ready_seq(tasks.size(), -1);
  std::int64_t next_seq = 0;
  for (TaskId id : tracker.initially_ready()) {
    ready.push_back(id);
    ready_seq[static_cast<std::size_t>(id)] = next_seq++;
  }

  std::size_t completed = 0;
  double now = 0.0;
  double warm_lambda = opt_lower_bound(tasks, platform) /
                       std::max(1.0, static_cast<double>(tasks.size()));

  // Resource side chosen by the last dual-approximation solve. §6.2: the
  // assignment is recomputed "each time a task becomes ready"; between
  // ready-set changes, dispatching reuses the last assignment.
  std::vector<Resource> assigned_side(tasks.size(), Resource::kCpu);
  bool ready_changed = true;

  // Hoisted scratch for the dispatch hot loop: the residual-load vectors,
  // the bisection buffers and the per-type dispatch lists are reused across
  // every ready-set change instead of being reallocated per event.
  detail::DualScratch scratch;
  detail::DualTry best, attempt;
  std::vector<double> cpu_loads, gpu_loads;
  std::vector<TaskId> candidates;
  candidates.reserve(tasks.size());
  std::vector<TaskId> by_type[2];
  by_type[0].reserve(tasks.size());
  by_type[1].reserve(tasks.size());
  std::vector<TaskId> started;
  started.reserve(static_cast<std::size_t>(platform.workers()));
  std::vector<WorkerId> idle;

  auto dispatch = [&] {
    if (ready.empty()) return;
    pool.idle_workers_gpu_first(idle);
    if (idle.empty()) return;

    if (ready_changed) {
      // Residual loads of each worker at `now`.
      cpu_loads.assign(static_cast<std::size_t>(platform.cpus()), 0.0);
      gpu_loads.assign(static_cast<std::size_t>(platform.gpus()), 0.0);
      double max_residual = 0.0;
      for (WorkerId w = 0; w < platform.workers(); ++w) {
        if (!pool.busy(w)) continue;
        const double residual = pool.running(w).finish - now;
        max_residual = std::max(max_residual, residual);
        if (platform.type_of(w) == Resource::kCpu) {
          cpu_loads[static_cast<std::size_t>(w)] = residual;
        } else {
          gpu_loads[static_cast<std::size_t>(
              w - platform.first(Resource::kGpu))] = residual;
        }
      }

      candidates.assign(ready.begin(), ready.end());
      detail::sort_by_accel(tasks, candidates);

      double lb = 0.5 * max_residual;
      for (TaskId id : candidates) {
        lb = std::max(lb, tasks[static_cast<std::size_t>(id)].min_time());
      }
      detail::search_lambda(tasks, candidates, cpu_loads, gpu_loads, lb,
                            warm_lambda, options.bisection_iters, &warm_lambda,
                            scratch, best, attempt);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        assigned_side[static_cast<std::size_t>(candidates[i])] = best.side[i];
      }
      ready_changed = false;
    }

    // Dispatch per resource type in priority (or ready) order.
    by_type[0].clear();
    by_type[1].clear();
    for (TaskId id : ready) {
      by_type[static_cast<std::size_t>(
          assigned_side[static_cast<std::size_t>(id)])].push_back(id);
    }
    auto order_tasks = [&](std::vector<TaskId>& ids) {
      std::sort(ids.begin(), ids.end(), [&](TaskId a, TaskId b) {
        if (!options.fifo_order) {
          const double pa = tasks[static_cast<std::size_t>(a)].priority;
          const double pb = tasks[static_cast<std::size_t>(b)].priority;
          if (pa != pb) return pa > pb;
        }
        return ready_seq[static_cast<std::size_t>(a)] <
               ready_seq[static_cast<std::size_t>(b)];
      });
    };
    order_tasks(by_type[0]);
    order_tasks(by_type[1]);

    started.clear();
    std::size_t next_of_type[2] = {0, 0};
    for (WorkerId w : idle) {
      auto& cursor = next_of_type[static_cast<std::size_t>(platform.type_of(w))];
      auto& pending = by_type[static_cast<std::size_t>(platform.type_of(w))];
      if (cursor >= pending.size()) continue;
      const TaskId id = pending[cursor++];
      const double dt = Platform::time_on(tasks[static_cast<std::size_t>(id)],
                                          platform.type_of(w));
      events.push(pool.start(w, id, now, dt), w);
      started.push_back(id);
    }
    if (!started.empty()) {
      std::erase_if(ready, [&](TaskId id) {
        return std::find(started.begin(), started.end(), id) != started.end();
      });
    }
  };

  dispatch();
  while (completed < tasks.size()) {
    assert(!events.empty() && "deadlock in DualHP DAG simulation");
    const double t = events.top().time;
    now = t;
    while (!events.empty() && events.top().time == t) {
      const auto ev = events.pop();
      const WorkerId w = ev.payload;
      const sim::Running done = pool.release(w);
      schedule.place(done.task, w, done.start, done.finish);
      ++completed;
      for (TaskId released : tracker.complete(done.task)) {
        ready.push_back(released);
        ready_seq[static_cast<std::size_t>(released)] = next_seq++;
        ready_changed = true;
      }
    }
    dispatch();
  }
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

}  // namespace hp
