#include "baselines/online_greedy.hpp"

#include <cassert>
#include <limits>
#include <queue>
#include <vector>

#include "obs/replay.hpp"

namespace hp {

const char* online_rule_name(OnlineRule rule) noexcept {
  switch (rule) {
    case OnlineRule::kEft: return "online-eft";
    case OnlineRule::kThreshold: return "online-threshold";
    case OnlineRule::kBalance: return "online-balance";
  }
  return "?";
}

Schedule online_greedy(std::span<const Task> tasks, const Platform& platform,
                       const OnlineGreedyOptions& options) {
  Schedule schedule(tasks.size());

  // Per-side min-heaps of (load, worker id) plus side totals.
  using Slot = std::pair<double, WorkerId>;
  using Heap = std::priority_queue<Slot, std::vector<Slot>, std::greater<>>;
  Heap heap[2];
  double side_load[2] = {0.0, 0.0};
  for (WorkerId w = 0; w < platform.workers(); ++w) {
    heap[static_cast<int>(platform.type_of(w))].emplace(0.0, w);
  }

  auto place_on_side = [&](TaskId id, Resource r) {
    auto& h = heap[static_cast<int>(r)];
    assert(!h.empty());
    auto [load, w] = h.top();
    h.pop();
    const double dt =
        Platform::time_on(tasks[static_cast<std::size_t>(id)], r);
    schedule.place(id, w, load, load + dt);
    side_load[static_cast<int>(r)] += dt;
    h.emplace(load + dt, w);
  };

  const bool has_cpu = platform.cpus() > 0;
  const bool has_gpu = platform.gpus() > 0;

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    const Task& t = tasks[i];
    if (!has_cpu) {
      place_on_side(id, Resource::kGpu);
      continue;
    }
    if (!has_gpu) {
      place_on_side(id, Resource::kCpu);
      continue;
    }
    switch (options.rule) {
      case OnlineRule::kEft: {
        const double cpu_finish = heap[0].top().first + t.cpu_time;
        const double gpu_finish = heap[1].top().first + t.gpu_time;
        place_on_side(id, cpu_finish <= gpu_finish ? Resource::kCpu
                                                   : Resource::kGpu);
        break;
      }
      case OnlineRule::kThreshold:
        place_on_side(id, t.accel() >= options.threshold ? Resource::kGpu
                                                         : Resource::kCpu);
        break;
      case OnlineRule::kBalance: {
        const double cpu_norm =
            (side_load[0] + t.cpu_time) / platform.cpus();
        const double gpu_norm =
            (side_load[1] + t.gpu_time) / platform.gpus();
        place_on_side(id, cpu_norm <= gpu_norm ? Resource::kCpu
                                               : Resource::kGpu);
        break;
      }
    }
  }
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

}  // namespace hp
