#pragma once
// Graham list scheduling on identical machines.
//
// Used by the Thm 14 analysis (Lemma 6 relies on Graham's (2 - 1/n) bound)
// and by the Fig 4 gadget bench, which exhibits a task set whose worst list
// schedule is almost twice its optimal packing.

#include <span>
#include <vector>

namespace hp {

struct ListScheduleResult {
  double makespan = 0.0;
  std::vector<int> machine;    ///< machine of each task (input order)
  std::vector<double> start;   ///< start time of each task
};

/// List-schedule tasks with the given `durations`, in input order, on
/// `machines` identical machines: whenever a machine is free, it takes the
/// next task of the list. Ties: lowest machine id.
[[nodiscard]] ListScheduleResult list_schedule_homogeneous(
    std::span<const double> durations, int machines);

/// Longest-processing-time-first variant (sorts by non-increasing duration,
/// then list-schedules). Classic 4/3-approximation of P||Cmax.
[[nodiscard]] ListScheduleResult lpt_schedule_homogeneous(
    std::span<const double> durations, int machines);

}  // namespace hp
