#pragma once
// Knapsack-DP dual approximation — the algorithm family of Bleuse et al.
// [3] (§3: "algorithms with varying approximation factors (4/3, 3/2 and 2)
// based on dynamic programming and dual approximation techniques").
//
// For a makespan guess lambda:
//   * tasks longer than lambda on one resource are forced to the other
//     (infeasible if both exceed lambda);
//   * the flexible tasks' CPU/GPU split is chosen by a knapsack dynamic
//     program — minimize the total CPU work subject to the GPU work fitting
//     the GPUs' capacity — instead of DualHP's greedy threshold fill;
//   * each side is packed with LPT; the guess is feasible if every load is
//     within 2*lambda.
// Binary search over lambda as usual. The DP optimizes the split exactly
// (up to the capacity discretization), which is precisely where the greedy
// threshold of DualHP loses on lumpy instances; the price is the DP's
// O(T * grid) time per guess — the complexity/quality trade-off the paper
// discusses in §3.

#include <span>

#include "model/platform.hpp"
#include "obs/event.hpp"
#include "sched/schedule.hpp"

namespace hp {

struct DualDpOptions {
  int bisection_iters = 16;  ///< binary-search steps on lambda
  int capacity_grid = 512;   ///< knapsack discretization cells
  /// Receives the finished schedule replayed as an event stream
  /// (obs::replay_schedule).
  obs::EventSink* sink = nullptr;
};

/// Schedule independent tasks. Deterministic.
[[nodiscard]] Schedule dualdp(std::span<const Task> tasks,
                              const Platform& platform,
                              const DualDpOptions& options = {});

}  // namespace hp
