// Verbatim seed implementation of HEFT (see heft_ref.hpp). Do not optimize:
// its value is being the trivially auditable oracle the gap-indexed engine
// is regression-tested against.

#include "baselines/heft_ref.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <vector>

#include "obs/replay.hpp"

namespace hp {

namespace {

/// Busy intervals of one worker, kept sorted by start time.
class WorkerTimelineRef {
 public:
  /// Earliest start >= ready for a block of length `dt`.
  /// With insertion, scans the gaps that end after `ready`; otherwise
  /// appends after the last segment.
  [[nodiscard]] double earliest_start(double ready, double dt,
                                      bool insertion) const {
    if (segments_.empty()) return ready;
    if (!insertion) return std::max(ready, segments_.back().end);
    // First segment that could bound a usable gap: binary search on end.
    auto it = std::lower_bound(
        segments_.begin(), segments_.end(), ready,
        [](const Segment& s, double t) { return s.end <= t; });
    // Gap before *it (between previous segment / ready and it->start).
    double candidate = ready;
    if (it != segments_.begin()) candidate = std::max(ready, std::prev(it)->end);
    while (it != segments_.end()) {
      if (candidate + dt <= it->start) return candidate;
      candidate = std::max(candidate, it->end);
      ++it;
    }
    return candidate;
  }

  void insert(double start, double end) {
    Segment seg{start, end};
    auto it = std::lower_bound(
        segments_.begin(), segments_.end(), seg,
        [](const Segment& a, const Segment& b) { return a.start < b.start; });
    segments_.insert(it, seg);
  }

 private:
  struct Segment {
    double start;
    double end;
  };
  std::vector<Segment> segments_;
};

Schedule heft_run_ref(std::span<const Task> tasks, const TaskGraph* graph,
                      const Platform& platform, const HeftOptions& options,
                      const std::vector<TaskId>& order) {
  Schedule schedule(tasks.size());
  std::vector<WorkerTimelineRef> timeline(
      static_cast<std::size_t>(platform.workers()));

  for (TaskId id : order) {
    const Task& t = tasks[static_cast<std::size_t>(id)];
    double ready = 0.0;
    if (graph != nullptr) {
      for (TaskId pred : graph->predecessors(id)) {
        ready = std::max(ready, schedule.placement(pred).end);
      }
    }
    WorkerId best_w = 0;
    double best_start = 0.0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (WorkerId w = 0; w < platform.workers(); ++w) {
      const double dt = Platform::time_on(t, platform.type_of(w));
      const double start = timeline[static_cast<std::size_t>(w)].earliest_start(
          ready, dt, options.insertion);
      if (start + dt < best_finish) {
        best_finish = start + dt;
        best_start = start;
        best_w = w;
      }
    }
    timeline[static_cast<std::size_t>(best_w)].insert(best_start, best_finish);
    schedule.place(id, best_w, best_start, best_finish);
  }
  return schedule;
}

}  // namespace

Schedule heft_ref(const TaskGraph& graph, const Platform& platform,
                  const HeftOptions& options) {
  assert(graph.finalized());
  assert(options.rank != RankScheme::kFifo && "HEFT requires a rank scheme");

  const std::vector<double> rank = bottom_levels(graph, options.rank);
  std::vector<TaskId> order(graph.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  // Decreasing upward rank. With strictly positive weights this is a
  // topological order (a predecessor's rank strictly exceeds its
  // successors'); break rank ties topologically via a stable sort on a
  // topological baseline.
  const std::vector<TaskId> topo = graph.topological_order();
  std::vector<std::size_t> topo_pos(graph.size());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    topo_pos[static_cast<std::size_t>(topo[i])] = i;
  }
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double ra = rank[static_cast<std::size_t>(a)];
    const double rb = rank[static_cast<std::size_t>(b)];
    if (ra != rb) return ra > rb;
    return topo_pos[static_cast<std::size_t>(a)] <
           topo_pos[static_cast<std::size_t>(b)];
  });
  Schedule schedule =
      heft_run_ref(graph.tasks(), &graph, platform, options, order);
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

Schedule heft_independent_ref(std::span<const Task> tasks,
                              const Platform& platform,
                              const HeftOptions& options) {
  assert(options.rank != RankScheme::kFifo && "HEFT requires a rank scheme");
  std::vector<TaskId> order(tasks.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double ra =
        rank_weight(tasks[static_cast<std::size_t>(a)], options.rank);
    const double rb =
        rank_weight(tasks[static_cast<std::size_t>(b)], options.rank);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  Schedule schedule = heft_run_ref(tasks, nullptr, platform, options, order);
  obs::replay_schedule_to(schedule, platform, options.sink);
  return schedule;
}

}  // namespace hp
