#pragma once
// HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al. [11]).
//
// The first class of schedulers discussed in §1/§6: tasks are sorted by
// upward rank (bottom level) and each is placed on the worker that
// completes it earliest, with insertion into idle gaps. There are no
// communication costs in the paper's model. Bleuse et al. [3] show HEFT can
// be Θ(m) from optimal on CPU+GPU platforms; the Fig 6/7 benches reproduce
// its weakness (it ignores acceleration factors).

#include <span>

#include "dag/ranking.hpp"
#include "dag/task_graph.hpp"
#include "model/platform.hpp"
#include "obs/event.hpp"
#include "sched/schedule.hpp"

namespace hp {

namespace obs {
class MetricsCollector;  // obs/profile.hpp
}

struct HeftOptions {
  RankScheme rank = RankScheme::kAvg;  ///< avg or min (§6.2); kFifo invalid
  bool insertion = true;  ///< insertion-based placement (classic HEFT)
  /// Receives the finished schedule replayed as an event stream
  /// (obs::replay_schedule), so static planners feed the same exporters
  /// and counters as the dynamic schedulers.
  obs::EventSink* sink = nullptr;
  /// Phase self-profiling (obs/profile.hpp): rank ordering and the
  /// per-task gap search, sampled. Null costs one pointer test per scope.
  obs::MetricsCollector* metrics = nullptr;
};

/// HEFT on a DAG. Graph must be finalized and acyclic.
[[nodiscard]] Schedule heft(const TaskGraph& graph, const Platform& platform,
                            const HeftOptions& options = {});

/// HEFT on independent tasks: rank reduces to the task's own weight; the
/// highest-rank task is repeatedly placed on the worker finishing it first.
[[nodiscard]] Schedule heft_independent(std::span<const Task> tasks,
                                        const Platform& platform,
                                        const HeftOptions& options = {});

}  // namespace hp
