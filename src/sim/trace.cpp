#include "sim/trace.hpp"

#include <sstream>

#include "util/table.hpp"

namespace hp::sim {

namespace {
const char* kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kStart: return "start";
    case TraceKind::kComplete: return "complete";
    case TraceKind::kAbort: return "abort";
    case TraceKind::kSpoliate: return "spoliate";
  }
  return "?";
}
}  // namespace

std::string TimelineLog::to_string(const Platform& platform) const {
  std::ostringstream oss;
  for (const TraceEntry& e : entries_) {
    oss << "[t=" << util::format_double(e.time, 4) << "] " << kind_name(e.kind)
        << " task " << e.task << " on " << resource_name(platform.type_of(e.worker))
        << '#' << e.worker;
    if (e.kind == TraceKind::kSpoliate && e.victim_worker >= 0) {
      oss << " (spoliated from "
          << resource_name(platform.type_of(e.victim_worker)) << '#'
          << e.victim_worker << ')';
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace hp::sim
