#pragma once
// Human-readable execution log for debugging and the examples' verbose mode.
//
// Schedulers append typed entries (start / complete / spoliate / abort);
// the log renders them as a chronological listing. This is deliberately
// separate from sched::Schedule, which is the machine-checkable artifact.

#include <string>
#include <vector>

#include "model/platform.hpp"
#include "model/task.hpp"
#include "obs/event.hpp"

namespace hp::sim {

enum class TraceKind : std::uint8_t { kStart, kComplete, kAbort, kSpoliate };

struct TraceEntry {
  double time;
  TraceKind kind;
  TaskId task;
  WorkerId worker;
  WorkerId victim_worker;  ///< for kSpoliate: the worker losing the task
};

class TimelineLog : public obs::EventSink {
 public:
  /// When disabled, record() is a no-op; schedulers can always call it.
  explicit TimelineLog(bool enabled = false) : enabled_(enabled) {}

  void record(double time, TraceKind kind, TaskId task, WorkerId worker,
              WorkerId victim_worker = -1) {
    if (!enabled_) return;
    entries_.push_back({time, kind, task, worker, victim_worker});
  }

  /// EventSink: project the typed stream onto the legacy entries. Only the
  /// kinds this log has always rendered are kept (start / complete / abort
  /// and committed spoliations); attempts, queue depths and idle intervals
  /// pass through silently.
  void on_event(const obs::Event& e) override {
    switch (e.kind) {
      case obs::EventKind::kStart:
        record(e.time, TraceKind::kStart, e.task, e.worker);
        break;
      case obs::EventKind::kComplete:
        record(e.time, TraceKind::kComplete, e.task, e.worker);
        break;
      case obs::EventKind::kAbort:
        record(e.time, TraceKind::kAbort, e.task, e.worker);
        break;
      case obs::EventKind::kSpoliateCommit:
        record(e.time, TraceKind::kSpoliate, e.task, e.worker, e.victim);
        break;
      default:
        break;
    }
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
    return entries_;
  }

  /// Render as text, one line per entry.
  [[nodiscard]] std::string to_string(const Platform& platform) const;

 private:
  bool enabled_;
  std::vector<TraceEntry> entries_;
};

}  // namespace hp::sim
