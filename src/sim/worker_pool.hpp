#pragma once
// Worker state tracking for event-driven scheduling simulations.
//
// A WorkerPool records, for each worker of a Platform, whether it is busy,
// which task it runs, when the task started and when it will complete. The
// schedulers (HeteroPrio, DualHP-DAG) drive it; the pool itself has no
// policy.

#include <cassert>
#include <vector>

#include "model/platform.hpp"
#include "model/task.hpp"
#include "obs/event.hpp"

namespace hp::sim {

/// A task in flight on a worker.
struct Running {
  TaskId task = kInvalidTask;
  double start = 0.0;
  double finish = 0.0;  ///< expected completion time
};

class WorkerPool {
 public:
  explicit WorkerPool(const Platform& platform)
      : platform_(platform),
        running_(static_cast<std::size_t>(platform.workers())),
        idle_since_(static_cast<std::size_t>(platform.workers()), 0.0) {}

  [[nodiscard]] const Platform& platform() const noexcept { return platform_; }

  /// Attach an event sink; the pool then emits idle-interval events: an
  /// idle-end on every start (with the interval length in `value`) and an
  /// idle-begin on every release. Workers begin idle at t = 0; that first
  /// interval has no explicit begin event.
  void attach_sink(obs::EventSink* sink) noexcept { probe_ = obs::Probe(sink); }

  [[nodiscard]] bool busy(WorkerId w) const noexcept {
    return running_[static_cast<std::size_t>(w)].task != kInvalidTask;
  }

  /// Permanently remove `w` from service (fault injection: a crash). The
  /// worker must already be released; it stops appearing in
  /// idle_workers_gpu_first() and the alive counts shrink.
  void mark_failed(WorkerId w) {
    assert(!busy(w));
    if (failed_.empty()) {
      failed_.assign(static_cast<std::size_t>(platform_.workers()), 0);
    }
    if (failed_[static_cast<std::size_t>(w)]) return;
    failed_[static_cast<std::size_t>(w)] = 1;
    ++failed_by_type_[static_cast<std::size_t>(platform_.type_of(w))];
  }

  [[nodiscard]] bool failed(WorkerId w) const noexcept {
    return !failed_.empty() && failed_[static_cast<std::size_t>(w)] != 0;
  }

  /// Surviving (never-crashed) workers of one resource type.
  [[nodiscard]] int alive_count(Resource r) const noexcept {
    return platform_.count(r) - failed_by_type_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int alive_count() const noexcept {
    return alive_count(Resource::kCpu) + alive_count(Resource::kGpu);
  }

  [[nodiscard]] const Running& running(WorkerId w) const noexcept {
    return running_[static_cast<std::size_t>(w)];
  }

  /// Start `task` on idle worker `w` at time `now` for `duration`.
  /// Returns the completion time.
  double start(WorkerId w, TaskId task, double now, double duration) {
    assert(!busy(w));
    auto& r = running_[static_cast<std::size_t>(w)];
    r.task = task;
    r.start = now;
    r.finish = now + duration;
    ++busy_count_;
    ++busy_by_type_[static_cast<std::size_t>(platform_.type_of(w))];
    if (probe_) {
      probe_.idle_end(now, w, now - idle_since_[static_cast<std::size_t>(w)]);
    }
    return r.finish;
  }

  /// Mark worker `w` idle at the task's expected finish time (normal
  /// completion). Returns what ran.
  Running release(WorkerId w) {
    assert(busy(w));
    return release_at(w, running_[static_cast<std::size_t>(w)].finish);
  }

  /// Mark worker `w` idle at an explicit instant (a spoliation abort frees
  /// the victim before its finish time). Returns what ran.
  Running release_at(WorkerId w, double now) {
    assert(busy(w));
    auto& r = running_[static_cast<std::size_t>(w)];
    Running out = r;
    r = Running{};
    --busy_count_;
    --busy_by_type_[static_cast<std::size_t>(platform_.type_of(w))];
    idle_since_[static_cast<std::size_t>(w)] = now;
    if (probe_) probe_.idle_begin(now, w);
    return out;
  }

  [[nodiscard]] int busy_count() const noexcept { return busy_count_; }

  /// Busy workers of one resource type, O(1). Lets schedulers skip a
  /// spoliation scan outright when the other resource is fully idle.
  [[nodiscard]] int busy_count(Resource r) const noexcept {
    return busy_by_type_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] bool all_busy() const noexcept {
    return busy_count_ == platform_.workers();
  }
  [[nodiscard]] bool all_idle() const noexcept { return busy_count_ == 0; }

  /// Collect idle workers, GPUs first then CPUs, each in increasing id.
  /// (GPUs are offered work first so the head of the affinity queue goes to
  /// a GPU when both types are idle — see DESIGN.md.)
  [[nodiscard]] std::vector<WorkerId> idle_workers_gpu_first() const;

  /// Allocation-free variant for scheduler hot loops: clears and refills
  /// `out` with the same contents as idle_workers_gpu_first().
  void idle_workers_gpu_first(std::vector<WorkerId>& out) const;

  /// Busy workers of type `r`, increasing id.
  [[nodiscard]] std::vector<WorkerId> busy_workers(Resource r) const;

 private:
  Platform platform_;
  std::vector<Running> running_;
  std::vector<double> idle_since_;
  obs::Probe probe_;
  int busy_count_ = 0;
  int busy_by_type_[2] = {0, 0};
  std::vector<char> failed_;  ///< lazily sized; empty means no crashes yet
  int failed_by_type_[2] = {0, 0};
};

}  // namespace hp::sim
