// EventQueue is header-only (class template); this translation unit pins an
// explicit instantiation so template errors surface when the library builds,
// not first in a downstream target.

#include "sim/event_queue.hpp"

#include <algorithm>

namespace hp::sim {

template class EventQueue<int>;

}  // namespace hp::sim
