#pragma once
// Stable discrete-event queue.
//
// A binary min-heap ordered by (time, sequence number). The sequence number
// makes simultaneous events pop in insertion order, which keeps every
// scheduler in this library fully deterministic (a core requirement: the
// worst-case constructions of Thms 8/11/14 rely on reproducible
// tie-breaking).

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

namespace hp::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    double time;
    std::uint64_t seq;
    Payload payload;
  };

  void push(double time, Payload payload) {
    heap_.push_back(Event{time, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Earliest event (undefined if empty).
  [[nodiscard]] const Event& top() const noexcept { return heap_.front(); }

  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event e = std::move(heap_.back());
    heap_.pop_back();
    return e;
  }

  /// Conditional pop: pop the earliest event into `*out` iff `pred(top())`
  /// holds. The predicate only ever sees the queue head, so a drain loop
  /// (`while (q.pop_if(is_arrival_at_t, &ev)) ...`) consumes exactly the
  /// leading run of matching events in (time, seq) order and stops at the
  /// first non-matching one — the batch-draining primitive of the online
  /// runtime.
  template <typename Pred>
  bool pop_if(const Pred& pred, Event* out) {
    if (heap_.empty() || !pred(heap_.front())) return false;
    *out = pop();
    return true;
  }

  /// Time of the earliest event iff it is strictly before `t`; nullopt when
  /// the queue is empty or the next event is at or after `t`. Lets a
  /// rolling-horizon loop ask "does anything happen before this horizon?"
  /// without popping.
  [[nodiscard]] std::optional<double> time_if_before(double t) const noexcept {
    if (heap_.empty() || heap_.front().time >= t) return std::nullopt;
    return heap_.front().time;
  }

  void clear() noexcept {
    heap_.clear();
    next_seq_ = 0;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hp::sim
