#include "sim/worker_pool.hpp"

namespace hp::sim {

std::vector<WorkerId> WorkerPool::idle_workers_gpu_first() const {
  std::vector<WorkerId> out;
  idle_workers_gpu_first(out);
  return out;
}

void WorkerPool::idle_workers_gpu_first(std::vector<WorkerId>& out) const {
  out.clear();
  out.reserve(static_cast<std::size_t>(platform_.workers() - busy_count_));
  for (WorkerId w = platform_.first(Resource::kGpu); w < platform_.workers();
       ++w) {
    if (!busy(w) && !failed(w)) out.push_back(w);
  }
  for (WorkerId w = 0; w < platform_.first(Resource::kGpu); ++w) {
    if (!busy(w) && !failed(w)) out.push_back(w);
  }
}

std::vector<WorkerId> WorkerPool::busy_workers(Resource r) const {
  std::vector<WorkerId> out;
  out.reserve(static_cast<std::size_t>(busy_count(r)));
  const WorkerId lo = platform_.first(r);
  const WorkerId hi = lo + platform_.count(r);
  for (WorkerId w = lo; w < hi; ++w) {
    if (busy(w)) out.push_back(w);
  }
  return out;
}

}  // namespace hp::sim
