#include "dag/validation.hpp"

#include <sstream>

namespace hp {

GraphCheck check_graph(const TaskGraph& graph) {
  if (!graph.finalized()) return {false, "graph not finalized"};
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Task& t = graph.task(static_cast<TaskId>(i));
    if (!(t.cpu_time > 0.0) || !(t.gpu_time > 0.0)) {
      std::ostringstream oss;
      oss << "task " << i << " has non-positive time (p=" << t.cpu_time
          << ", q=" << t.gpu_time << ')';
      return {false, oss.str()};
    }
  }
  if (!graph.is_dag()) return {false, "graph has a cycle"};
  return {};
}

}  // namespace hp
