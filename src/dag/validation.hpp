#pragma once
// Structural validation of task graphs.

#include <string>

#include "dag/task_graph.hpp"

namespace hp {

struct GraphCheck {
  bool ok = true;
  std::string message;  ///< first problem found, empty when ok
};

/// Check that `graph` is a well-formed scheduling input: finalized, acyclic,
/// strictly positive task times on both resources.
[[nodiscard]] GraphCheck check_graph(const TaskGraph& graph);

}  // namespace hp
