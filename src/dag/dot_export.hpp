#pragma once
// Graphviz DOT export for task graphs (inspection / documentation).

#include <string>

#include "dag/task_graph.hpp"

namespace hp {

struct DotOptions {
  bool show_times = true;      ///< annotate nodes with (p, q)
  bool color_by_kind = true;   ///< one fill color per kernel kind
  std::size_t max_tasks = 2000;  ///< refuse to render graphs bigger than this
};

/// Render `graph` as a DOT digraph. Returns an empty string if the graph
/// exceeds options.max_tasks (DOT output of a 100k-node graph is useless).
[[nodiscard]] std::string to_dot(const TaskGraph& graph,
                                 const DotOptions& options = {});

}  // namespace hp
