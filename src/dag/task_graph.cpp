#include "dag/task_graph.hpp"

#include <algorithm>

namespace hp {

TaskId TaskGraph::add_task(Task task) {
  finalized_ = false;
  tasks_.push_back(task);
  return static_cast<TaskId>(tasks_.size() - 1);
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  assert(from >= 0 && static_cast<std::size_t>(from) < tasks_.size());
  assert(to >= 0 && static_cast<std::size_t>(to) < tasks_.size());
  assert(from != to);
  finalized_ = false;
  raw_edges_.emplace_back(from, to);
}

void TaskGraph::finalize() {
  if (finalized_) return;
  std::sort(raw_edges_.begin(), raw_edges_.end());
  raw_edges_.erase(std::unique(raw_edges_.begin(), raw_edges_.end()),
                   raw_edges_.end());
  edge_count_ = raw_edges_.size();

  const std::size_t n = tasks_.size();
  succ_offset_.assign(n + 1, 0);
  pred_offset_.assign(n + 1, 0);
  for (const auto& [from, to] : raw_edges_) {
    ++succ_offset_[static_cast<std::size_t>(from) + 1];
    ++pred_offset_[static_cast<std::size_t>(to) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    succ_offset_[i + 1] += succ_offset_[i];
    pred_offset_[i + 1] += pred_offset_[i];
  }
  succ_.resize(edge_count_);
  pred_.resize(edge_count_);
  std::vector<std::size_t> succ_fill(succ_offset_.begin(), succ_offset_.end() - 1);
  std::vector<std::size_t> pred_fill(pred_offset_.begin(), pred_offset_.end() - 1);
  for (const auto& [from, to] : raw_edges_) {
    succ_[succ_fill[static_cast<std::size_t>(from)]++] = to;
    pred_[pred_fill[static_cast<std::size_t>(to)]++] = from;
  }
  finalized_ = true;

  // Cache the topological order (iterative Kahn) so ranking, bounds,
  // validation and HEFT share one traversal instead of re-deriving it.
  topo_order_.clear();
  topo_order_.reserve(n);
  std::vector<std::size_t> indeg(n);
  for (std::size_t i = 0; i < n; ++i) {
    indeg[i] = in_degree(static_cast<TaskId>(i));
    if (indeg[i] == 0) topo_order_.push_back(static_cast<TaskId>(i));
  }
  // `topo_order_` doubles as the work queue.
  for (std::size_t head = 0; head < topo_order_.size(); ++head) {
    for (TaskId succ : successors(topo_order_[head])) {
      if (--indeg[static_cast<std::size_t>(succ)] == 0) {
        topo_order_.push_back(succ);
      }
    }
  }
  if (topo_order_.size() != n) topo_order_.clear();  // cycle
}

std::vector<TaskId> TaskGraph::topological_order() const {
  assert(finalized_);
  return {topo_order_.begin(), topo_order_.end()};
}

bool TaskGraph::is_dag() const {
  assert(finalized_);
  return empty() || !topo_order_.empty();
}

Instance TaskGraph::to_instance() const {
  Instance inst(name_);
  for (const Task& t : tasks_) inst.add(t);
  return inst;
}

}  // namespace hp
