#pragma once
// Ready-set maintenance for DAG scheduling.
//
// Tracks remaining in-degrees; completing a task releases its successors.
// This is the piece a task-based runtime (StarPU et al.) maintains for the
// scheduler: "the set of (independent) tasks whose all dependencies have
// been solved" (§1).

#include <vector>

#include "dag/task_graph.hpp"

namespace hp {

class ReadyTracker {
 public:
  /// Graph must be finalized. Entry tasks are immediately ready.
  explicit ReadyTracker(const TaskGraph& graph);

  /// Tasks ready at construction (in-degree 0), in id order.
  [[nodiscard]] const std::vector<TaskId>& initially_ready() const noexcept {
    return initial_;
  }

  /// Mark `task` complete; returns the tasks that became ready, in id order.
  std::vector<TaskId> complete(TaskId task);

  /// Number of tasks not yet completed.
  [[nodiscard]] std::size_t remaining() const noexcept { return remaining_; }
  [[nodiscard]] bool done() const noexcept { return remaining_ == 0; }

 private:
  const TaskGraph* graph_;
  std::vector<std::int32_t> indegree_;
  std::vector<TaskId> initial_;
  std::size_t remaining_;
};

}  // namespace hp
