#include "dag/dot_export.hpp"

#include <sstream>

#include "util/table.hpp"

namespace hp {

namespace {
const char* kind_color(KernelKind kind) {
  switch (kind) {
    case KernelKind::kPotrf:
    case KernelKind::kGeqrt:
    case KernelKind::kGetrf: return "#e45756";  // panel factorizations
    case KernelKind::kTrsm:
    case KernelKind::kOrmqr:
    case KernelKind::kGessm: return "#f2a93b";  // panel updates
    case KernelKind::kSyrk:
    case KernelKind::kTsqrt:
    case KernelKind::kTstrf: return "#4c78a8";  // secondary updates
    case KernelKind::kGemm:
    case KernelKind::kTsmqr:
    case KernelKind::kSsssm: return "#59a14f";  // trailing updates
    case KernelKind::kGeneric: return "#bab0ac";
  }
  return "#bab0ac";
}
}  // namespace

std::string to_dot(const TaskGraph& graph, const DotOptions& options) {
  if (graph.size() > options.max_tasks) return {};
  std::ostringstream oss;
  oss << "digraph \"" << graph.name() << "\" {\n"
      << "  rankdir=TB;\n  node [shape=box, style=filled];\n";
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    const Task& t = graph.task(id);
    oss << "  t" << id << " [label=\"" << kernel_name(t.kind) << ' ' << id;
    if (options.show_times) {
      oss << "\\np=" << util::format_double(t.cpu_time, 3)
          << " q=" << util::format_double(t.gpu_time, 3);
    }
    oss << '"';
    if (options.color_by_kind) oss << ", fillcolor=\"" << kind_color(t.kind) << '"';
    oss << "];\n";
  }
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    for (TaskId succ : graph.successors(id)) {
      oss << "  t" << id << " -> t" << succ << ";\n";
    }
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace hp
