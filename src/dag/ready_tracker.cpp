#include "dag/ready_tracker.hpp"

#include <cassert>

namespace hp {

ReadyTracker::ReadyTracker(const TaskGraph& graph)
    : graph_(&graph), indegree_(graph.size()), remaining_(graph.size()) {
  assert(graph.finalized());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    indegree_[i] = static_cast<std::int32_t>(graph.in_degree(static_cast<TaskId>(i)));
    if (indegree_[i] == 0) initial_.push_back(static_cast<TaskId>(i));
  }
}

std::vector<TaskId> ReadyTracker::complete(TaskId task) {
  assert(remaining_ > 0);
  --remaining_;
  std::vector<TaskId> released;
  for (TaskId succ : graph_->successors(task)) {
    auto& deg = indegree_[static_cast<std::size_t>(succ)];
    assert(deg > 0);
    if (--deg == 0) released.push_back(succ);
  }
  return released;
}

}  // namespace hp
