#include "dag/random_graphs.hpp"

#include <algorithm>
#include <cassert>

namespace hp {

namespace {

Task draw_task(const UniformGenParams& params, util::Rng& rng) {
  Task t;
  t.cpu_time = rng.uniform(params.cpu_time_lo, params.cpu_time_hi);
  t.gpu_time = t.cpu_time / rng.uniform(params.accel_lo, params.accel_hi);
  return t;
}

}  // namespace

TaskGraph random_layered_dag(const LayeredDagParams& params, util::Rng& rng) {
  assert(params.layers >= 1 && params.width >= 1);
  TaskGraph graph("layered");
  std::vector<TaskId> previous;
  for (int layer = 0; layer < params.layers; ++layer) {
    std::vector<TaskId> current;
    for (int i = 0; i < params.width; ++i) {
      current.push_back(graph.add_task(draw_task(params.timing, rng)));
    }
    if (!previous.empty()) {
      for (TaskId to : current) {
        bool connected = false;
        for (TaskId from : previous) {
          if (rng.uniform01() < params.edge_probability) {
            graph.add_edge(from, to);
            connected = true;
          }
        }
        if (!connected) {
          // Guarantee a predecessor so only layer 0 holds entry tasks.
          const TaskId from =
              previous[rng.bounded(previous.size())];
          graph.add_edge(from, to);
        }
      }
    }
    previous = std::move(current);
  }
  graph.finalize();
  return graph;
}

TaskGraph random_sparse_dag(const SparseDagParams& params, util::Rng& rng) {
  assert(params.num_tasks >= 1 && params.window >= 1);
  TaskGraph graph("sparse");
  for (std::size_t i = 0; i < params.num_tasks; ++i) {
    graph.add_task(draw_task(params.timing, rng));
  }
  const double per_slot_probability =
      std::min(1.0, params.avg_out_degree / params.window);
  for (std::size_t i = 0; i < params.num_tasks; ++i) {
    const std::size_t hi =
        std::min(params.num_tasks, i + 1 + static_cast<std::size_t>(params.window));
    for (std::size_t j = i + 1; j < hi; ++j) {
      if (rng.uniform01() < per_slot_probability) {
        graph.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(j));
      }
    }
  }
  graph.finalize();
  return graph;
}

}  // namespace hp
