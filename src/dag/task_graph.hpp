#pragma once
// Task graph (DAG) substrate.
//
// Nodes are Tasks (same model as independent instances); edges are
// precedence constraints. Graphs are built incrementally (add_task /
// add_edge) and then finalized into CSR adjacency for O(1) successor /
// predecessor spans; the linear-algebra generators produce graphs with
// ~N^3/3 tasks so compactness matters.

#include <cassert>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "model/instance.hpp"
#include "model/task.hpp"

namespace hp {

class TaskGraph {
 public:
  TaskGraph() = default;
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Append a task; returns its id. Invalidates finalization.
  TaskId add_task(Task task);

  /// Add the precedence edge from -> to. Duplicate edges are removed at
  /// finalize(). Invalidates finalization.
  void add_edge(TaskId from, TaskId to);

  /// Build CSR adjacency. Must be called after construction and before any
  /// successor/predecessor query. Idempotent.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edge_count_; }

  [[nodiscard]] const Task& task(TaskId id) const noexcept {
    return tasks_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] Task& task(TaskId id) noexcept {
    return tasks_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::span<const Task> tasks() const noexcept { return tasks_; }

  [[nodiscard]] std::span<const TaskId> successors(TaskId id) const noexcept {
    assert(finalized_);
    const auto i = static_cast<std::size_t>(id);
    return {succ_.data() + succ_offset_[i], succ_offset_[i + 1] - succ_offset_[i]};
  }
  [[nodiscard]] std::span<const TaskId> predecessors(TaskId id) const noexcept {
    assert(finalized_);
    const auto i = static_cast<std::size_t>(id);
    return {pred_.data() + pred_offset_[i], pred_offset_[i + 1] - pred_offset_[i]};
  }

  [[nodiscard]] std::size_t in_degree(TaskId id) const noexcept {
    return predecessors(id).size();
  }
  [[nodiscard]] std::size_t out_degree(TaskId id) const noexcept {
    return successors(id).size();
  }

  /// Topological order (Kahn), computed once at finalize() and cached. Empty
  /// if the graph has a cycle and is non-empty. Requires finalize(). The span
  /// stays valid until the next finalize().
  [[nodiscard]] std::span<const TaskId> topo_order() const noexcept {
    assert(finalized_);
    return topo_order_;
  }

  /// Copying variant of topo_order(), kept for callers that need ownership.
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// True iff acyclic. O(1): the verdict is cached by finalize().
  [[nodiscard]] bool is_dag() const;

  /// Copy the tasks into an independent-task Instance (drops edges).
  /// This is how Fig 6's "independent tasks" instances are derived from the
  /// kernels' task sets (§6.1).
  [[nodiscard]] Instance to_instance() const;

 private:
  std::string name_;
  std::vector<Task> tasks_;
  std::vector<std::pair<TaskId, TaskId>> raw_edges_;
  std::size_t edge_count_ = 0;
  bool finalized_ = false;

  std::vector<std::size_t> succ_offset_;
  std::vector<TaskId> succ_;
  std::vector<std::size_t> pred_offset_;
  std::vector<TaskId> pred_;
  std::vector<TaskId> topo_order_;  ///< empty iff cyclic (and non-empty)
};

}  // namespace hp
