#include "dag/ranking.hpp"

#include <algorithm>
#include <cassert>

namespace hp {

const char* rank_scheme_name(RankScheme scheme) noexcept {
  switch (scheme) {
    case RankScheme::kAvg: return "avg";
    case RankScheme::kMin: return "min";
    case RankScheme::kFifo: return "fifo";
  }
  return "?";
}

double rank_weight(const Task& task, RankScheme scheme) noexcept {
  switch (scheme) {
    case RankScheme::kAvg: return 0.5 * (task.cpu_time + task.gpu_time);
    case RankScheme::kMin: return task.min_time();
    case RankScheme::kFifo: return 0.0;
  }
  return 0.0;
}

std::vector<double> bottom_levels(const TaskGraph& graph, RankScheme scheme) {
  const std::span<const TaskId> order = graph.topo_order();
  assert(graph.empty() || !order.empty());
  std::vector<double> level(graph.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId id = *it;
    double succ_max = 0.0;
    for (TaskId succ : graph.successors(id)) {
      succ_max = std::max(succ_max, level[static_cast<std::size_t>(succ)]);
    }
    level[static_cast<std::size_t>(id)] =
        rank_weight(graph.task(id), scheme) + succ_max;
  }
  return level;
}

std::vector<double> top_levels(const TaskGraph& graph, RankScheme scheme) {
  const std::span<const TaskId> order = graph.topo_order();
  assert(graph.empty() || !order.empty());
  std::vector<double> level(graph.size(), 0.0);
  for (TaskId id : order) {
    const double ready =
        level[static_cast<std::size_t>(id)] + rank_weight(graph.task(id), scheme);
    for (TaskId succ : graph.successors(id)) {
      auto& l = level[static_cast<std::size_t>(succ)];
      l = std::max(l, ready);
    }
  }
  return level;
}

void assign_priorities(TaskGraph& graph, RankScheme scheme) {
  if (scheme == RankScheme::kFifo) {
    for (std::size_t i = 0; i < graph.size(); ++i) {
      graph.task(static_cast<TaskId>(i)).priority = 0.0;
    }
    return;
  }
  const std::vector<double> levels = bottom_levels(graph, scheme);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    graph.task(static_cast<TaskId>(i)).priority = levels[i];
  }
}

double critical_path(const TaskGraph& graph, RankScheme scheme) {
  const std::vector<double> levels = bottom_levels(graph, scheme);
  double best = 0.0;
  for (double l : levels) best = std::max(best, l);
  return best;
}

}  // namespace hp
