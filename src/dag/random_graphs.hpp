#pragma once
// Random task-graph generators — non-linear-algebra DAG shapes for property
// tests and robustness experiments (the paper's algorithms must not depend
// on the regular structure of the factorization DAGs).

#include "dag/task_graph.hpp"
#include "model/generators.hpp"
#include "util/rng.hpp"

namespace hp {

struct LayeredDagParams {
  int layers = 6;
  int width = 8;               ///< tasks per layer
  double edge_probability = 0.35;  ///< per (prev-layer task, task) pair
  UniformGenParams timing;     ///< task duration distribution
};

/// Layered DAG: edges only go from layer L to layer L+1; every non-entry
/// task gets at least one predecessor (no accidental extra sources).
[[nodiscard]] TaskGraph random_layered_dag(const LayeredDagParams& params,
                                           util::Rng& rng);

struct SparseDagParams {
  std::size_t num_tasks = 50;
  /// Expected number of successors per task (edges go forward in id order;
  /// targets drawn uniformly from the next `window` tasks).
  double avg_out_degree = 2.0;
  int window = 12;
  UniformGenParams timing;
};

/// Sparse random DAG over a topological spine (G(n, p) restricted to a
/// forward window, so depth and width are both non-trivial).
[[nodiscard]] TaskGraph random_sparse_dag(const SparseDagParams& params,
                                          util::Rng& rng);

}  // namespace hp
