#pragma once
// Task ranking schemes for DAG scheduling (§6.2).
//
// The paper compares two bottom-level weight schemes plus a no-priority
// scheme:
//   avg  — node weight is the mean of the CPU and GPU times (the weight used
//          by standard HEFT on two resource types);
//   min  — node weight is min(p, q), the "optimistic" variant;
//   fifo — no offline priority; ties are broken by ready order (only used by
//          DualHP in the paper).
// The bottom level of a task is the maximum weight of a path from the task
// to an exit task, inclusive.

#include <vector>

#include "dag/task_graph.hpp"

namespace hp {

enum class RankScheme { kAvg, kMin, kFifo };

[[nodiscard]] const char* rank_scheme_name(RankScheme scheme) noexcept;

/// Node weight of `task` under `scheme` (0 for kFifo).
[[nodiscard]] double rank_weight(const Task& task, RankScheme scheme) noexcept;

/// Bottom level of every task (max path weight to an exit, inclusive).
/// Graph must be finalized and acyclic.
[[nodiscard]] std::vector<double> bottom_levels(const TaskGraph& graph,
                                                RankScheme scheme);

/// Top level of every task: max path weight from an entry, exclusive of the
/// task itself. With kMin weights this is a valid earliest-start bound on
/// any platform.
[[nodiscard]] std::vector<double> top_levels(const TaskGraph& graph,
                                             RankScheme scheme);

/// Set each task's priority to its bottom level (no-op for kFifo: priorities
/// are set to 0 so ready order decides).
void assign_priorities(TaskGraph& graph, RankScheme scheme);

/// Critical-path length under `scheme` weights: max bottom level over entry
/// tasks. With kMin weights this is a lower bound on any schedule's makespan.
[[nodiscard]] double critical_path(const TaskGraph& graph, RankScheme scheme);

}  // namespace hp
