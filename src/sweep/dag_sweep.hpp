#pragma once
// Shared runner for the DAG evaluation benches (Figs 7, 8, 9): runs the
// seven scheduler variants of §6.2 over the three kernels and a sweep of
// tile counts on the paper's platform (20 CPUs, 4 GPUs), collecting
// makespans, lower bounds and the Fig 8/9 metrics.
//
// The (kernel × tiles) grid cells are independent, so the runner fans them
// across a util::ThreadPool. Results are gathered into their original grid
// order and every cell is self-seeded, so the emitted rows (and therefore
// the CSV/table output) are byte-identical to a serial run — set
// SweepOptions::threads = 1 to force the serial reference path.

#include <string>
#include <vector>

#include "model/platform.hpp"
#include "sched/metrics.hpp"

namespace hp::bench {

struct SweepRow {
  std::string kernel;    // cholesky | qr | lu
  int tiles = 0;
  std::string algorithm; // e.g. "HeteroPrio-min"
  double makespan = 0.0;
  double lower_bound = 0.0;
  double ratio = 0.0;
  int spoliations = 0;
  ScheduleMetrics metrics;
  Platform platform{20, 4};
};

struct SweepOptions {
  std::vector<std::string> kernels = {"cholesky", "qr", "lu"};
  std::vector<int> tile_counts = {4, 8, 12, 16, 20, 24, 32, 40, 48, 64};
  Platform platform{20, 4};
  bool verbose = true;  ///< progress lines on stderr
  /// Worker threads for the cell fan-out: 1 = serial (reference path),
  /// <= 0 = all hardware threads, otherwise the given count.
  int threads = 0;
  /// `--trace FILE`: write a Chrome trace-event JSON of one representative
  /// HeteroPrio cell (first kernel, largest tile count) to FILE.
  std::string trace_path;
};

/// Run the sweep; one row per (kernel, tiles, algorithm), in grid order
/// regardless of thread count.
[[nodiscard]] std::vector<SweepRow> run_dag_sweep(const SweepOptions& options);

/// Parse bench CLI args: an optional max tile count (caps the sweep), an
/// optional comma-free kernel name filter, `-jN` (thread count) and
/// `serial` (equivalent to -j1).
[[nodiscard]] SweepOptions sweep_options_from_args(int argc, char** argv);

/// If the environment variable HP_BENCH_CSV names a directory, dump the
/// sweep rows (kernel, N, algorithm, makespan, lower bound, ratio,
/// spoliations, idle/accel metrics) to <dir>/<name>.csv for plotting.
/// Returns true if a file was written.
bool maybe_write_sweep_csv(const std::vector<SweepRow>& rows,
                           const std::string& name);

/// If SweepOptions::trace_path is set, re-run the representative cell
/// (first kernel, largest tile count) under HeteroPrio-min with a live
/// event recorder and write the Chrome trace-event JSON (Perfetto-loadable)
/// to that path. Returns true if a file was written.
bool maybe_write_sweep_trace(const SweepOptions& options);

}  // namespace hp::bench
