#include "sweep/dag_sweep.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "obs/export_chrome.hpp"
#include "obs/recorder.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"

namespace hp::bench {

namespace {

TaskGraph build_kernel(const std::string& kernel, int tiles) {
  if (kernel == "cholesky") return cholesky_dag(tiles);
  if (kernel == "qr") return qr_dag(tiles);
  if (kernel == "lu") return lu_dag(tiles);
  std::cerr << "unknown kernel " << kernel << '\n';
  std::exit(1);
}

/// All seven algorithm rows of one (kernel, tiles) grid cell. Self-contained
/// and deterministic, so cells can run on any worker thread in any order.
std::vector<SweepRow> run_sweep_cell(const std::string& kernel, int tiles,
                                     const SweepOptions& options) {
  std::vector<SweepRow> rows;
  rows.reserve(7);
  TaskGraph graph = build_kernel(kernel, tiles);
  const double lb = dag_lower_bound(graph, options.platform).value();

  auto record = [&](const std::string& algo, const Schedule& s,
                    int spoliations) {
    SweepRow row;
    row.kernel = kernel;
    row.tiles = tiles;
    row.algorithm = algo;
    row.makespan = s.makespan();
    row.lower_bound = lb;
    row.ratio = s.makespan() / lb;
    row.spoliations = spoliations;
    row.metrics = compute_metrics(s, graph.tasks(), options.platform);
    row.platform = options.platform;
    rows.push_back(std::move(row));
  };

  for (RankScheme scheme : {RankScheme::kAvg, RankScheme::kMin}) {
    assign_priorities(graph, scheme);
    const std::string suffix = rank_scheme_name(scheme);
    HeteroPrioStats stats;
    record("HeteroPrio-" + suffix,
           heteroprio_dag(graph, options.platform, {}, &stats),
           stats.spoliations);
    // compute_metrics only sees the schedule; graft the event-level
    // spoliation counters the engine tracked.
    rows.back().metrics.counters.spoliation_attempts = stats.spoliation_attempts;
    rows.back().metrics.counters.spoliation_skips = stats.spoliation_skips;
    record("HEFT-" + suffix, heft(graph, options.platform, {.rank = scheme}),
           0);
    record("DualHP-" + suffix, dualhp_dag(graph, options.platform), 0);
  }
  assign_priorities(graph, RankScheme::kFifo);
  record("DualHP-fifo",
         dualhp_dag(graph, options.platform, {.fifo_order = true}), 0);
  return rows;
}

}  // namespace

std::vector<SweepRow> run_dag_sweep(const SweepOptions& options) {
  struct Cell {
    const std::string* kernel;
    int tiles;
  };
  std::vector<Cell> cells;
  cells.reserve(options.kernels.size() * options.tile_counts.size());
  for (const std::string& kernel : options.kernels) {
    for (int tiles : options.tile_counts) {
      cells.push_back(Cell{&kernel, tiles});
    }
  }

  // Every cell writes into its own pre-allocated slot; the final
  // concatenation is in grid order no matter which worker ran what.
  std::vector<std::vector<SweepRow>> per_cell(cells.size());
  util::parallel_for(cells.size(), options.threads, [&](std::size_t i) {
    const Cell& cell = cells[i];
    per_cell[i] = run_sweep_cell(*cell.kernel, cell.tiles, options);
    if (options.verbose) {
      std::cerr << "[sweep] " + *cell.kernel + " N=" +
                       std::to_string(cell.tiles) + "\n";
    }
  });

  std::vector<SweepRow> rows;
  rows.reserve(cells.size() * 7);
  for (std::vector<SweepRow>& cell_rows : per_cell) {
    for (SweepRow& row : cell_rows) rows.push_back(std::move(row));
  }
  return rows;
}

bool maybe_write_sweep_csv(const std::vector<SweepRow>& rows,
                           const std::string& name) {
  const char* dir = std::getenv("HP_BENCH_CSV");
  if (dir == nullptr || rows.empty()) return false;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  util::CsvWriter csv(path,
                      {"kernel", "tiles", "algorithm", "makespan",
                       "lower_bound", "ratio", "spoliations", "cpu_idle",
                       "gpu_idle", "a_cpu", "a_gpu"});
  if (!csv.ok()) {
    std::cerr << "[sweep] cannot write " << path << '\n';
    return false;
  }
  for (const SweepRow& row : rows) {
    csv.write_row({row.kernel, std::to_string(row.tiles), row.algorithm,
                   util::format_double(row.makespan, 6),
                   util::format_double(row.lower_bound, 6),
                   util::format_double(row.ratio, 6),
                   std::to_string(row.spoliations),
                   util::format_double(row.metrics.cpu.idle_time, 6),
                   util::format_double(row.metrics.gpu.idle_time, 6),
                   util::format_double(row.metrics.cpu.equivalent_accel, 6),
                   util::format_double(row.metrics.gpu.equivalent_accel, 6)});
  }
  std::cerr << "[sweep] wrote " << path << '\n';
  return true;
}

bool maybe_write_sweep_trace(const SweepOptions& options) {
  if (options.trace_path.empty()) return false;
  const std::string& kernel = options.kernels.front();
  const int tiles =
      options.tile_counts.empty() ? 16 : options.tile_counts.back();
  TaskGraph graph = build_kernel(kernel, tiles);
  assign_priorities(graph, RankScheme::kMin);
  obs::EventRecorder recorder;
  HeteroPrioOptions hp_options;
  hp_options.sink = &recorder;
  (void)heteroprio_dag(graph, options.platform, hp_options);

  std::ofstream out(options.trace_path);
  if (!out) {
    std::cerr << "[sweep] cannot write " << options.trace_path << '\n';
    return false;
  }
  out << obs::chrome_trace_from_events(recorder.events(), options.platform,
                                       graph.tasks());
  std::cerr << "[sweep] wrote trace " << options.trace_path << " (" << kernel
            << " N=" << tiles << ", " << recorder.size() << " events)\n";
  return true;
}

SweepOptions sweep_options_from_args(int argc, char** argv) {
  SweepOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "cholesky" || arg == "qr" || arg == "lu") {
      options.kernels = {arg};
    } else if (arg == "--trace" && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else if (arg == "serial") {
      options.threads = 1;
    } else if (arg.rfind("-j", 0) == 0) {
      options.threads = std::atoi(arg.c_str() + 2);
      if (options.threads <= 0) options.threads = 0;  // "-j" alone: auto
    } else {
      const int cap = std::atoi(arg.c_str());
      if (cap > 0) {
        std::erase_if(options.tile_counts, [cap](int n) { return n > cap; });
      }
    }
  }
  return options;
}

}  // namespace hp::bench
