#pragma once
// HeteroPrio extended to task graphs (§6.2).
//
// The independent-task rule is applied at every instant to the set of
// currently ready tasks: an idle resource takes the most-affine ready task;
// if no ready task is available for an idle resource, a spoliation attempt
// is done on currently running tasks of the other resource type. Priorities
// (typically bottom levels, see dag/ranking.hpp) break acceleration-factor
// ties and select among spoliation victims.

#include "core/heteroprio.hpp"
#include "dag/task_graph.hpp"

namespace hp {

/// Schedule `graph` on `platform` with HeteroPrio. The graph must be
/// finalized and acyclic; task priorities must already be assigned (use
/// assign_priorities() for the paper's avg/min schemes). Deterministic.
[[nodiscard]] Schedule heteroprio_dag(const TaskGraph& graph,
                                      const Platform& platform,
                                      const HeteroPrioOptions& options = {},
                                      HeteroPrioStats* stats = nullptr);

}  // namespace hp
