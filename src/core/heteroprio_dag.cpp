#include "core/heteroprio_dag.hpp"

#include <cassert>

#include "core/hp_engine.hpp"

namespace hp {

Schedule heteroprio_dag(const TaskGraph& graph, const Platform& platform,
                        const HeteroPrioOptions& options,
                        HeteroPrioStats* stats) {
  assert(graph.finalized());
  return detail::run_heteroprio(graph.tasks(), &graph, platform, options,
                                stats);
}

}  // namespace hp
