#pragma once
// HeteroPrio for a set of independent tasks (the paper's Algorithm 1).
//
// Ready tasks are kept in a double-ended queue sorted by non-increasing
// acceleration factor. An idle GPU takes the task at the head (most
// GPU-friendly); an idle CPU takes the task at the tail (most CPU-friendly).
// Ties in the acceleration factor are broken by the offline priority: the
// highest-priority task is placed first in queue order for rho >= 1 and last
// for rho < 1 (§2.2) — so whichever resource pops that group first gets the
// highest-priority task of the group.
//
// When a worker is idle and no ready task remains, it attempts *spoliation*
// (§2.1): it scans the tasks running on the other resource type in
// decreasing order of expected completion time (ties: highest priority
// first) and restarts the first task it would complete strictly earlier.
// The victim's progress is lost and recorded as an aborted segment.

#include <span>

#include "fault/fault_plan.hpp"
#include "model/platform.hpp"
#include "model/task.hpp"
#include "obs/event.hpp"
#include "sched/schedule.hpp"
#include "sim/trace.hpp"

namespace hp {

namespace obs {
class MetricsCollector;  // obs/profile.hpp
}

/// Order in which running tasks are scanned for spoliation.
enum class VictimOrder {
  kAuto,            ///< kCompletionTime for independent tasks (Algorithm 1),
                    ///< kPriority for DAGs (§6.2)
  kCompletionTime,  ///< decreasing expected completion time, ties by priority
  kPriority,        ///< decreasing priority, ties by completion time
};

struct HeteroPrioOptions {
  /// Disable to obtain the pure list schedule S_HP^NS of §4.1.
  bool enable_spoliation = true;
  VictimOrder victim_order = VictimOrder::kAuto;
  /// Optional execution log (verbose examples / debugging).
  sim::TimelineLog* log = nullptr;
  /// Actual per-task execution times, parallel to the scheduled tasks.
  /// When non-empty, the scheduler *decides* with the (estimated) task
  /// times — queue order, expected completion times, spoliation tests —
  /// but tasks *run* for their actual times, modeling a runtime system
  /// whose duration estimates are imperfect (§1). Empty: actual = estimate.
  std::span<const Task> actual_times = {};
  /// Structured event stream (obs/): ready, start, complete, abort,
  /// spoliate-attempt/skip/commit, queue-depth samples and idle intervals.
  /// Null keeps the hot path at a single pointer test per decision (and
  /// -DHP_OBS_OFF removes even that).
  obs::EventSink* sink = nullptr;
  /// Phase self-profiling (obs/profile.hpp): engine total, SoA key build,
  /// sort, dispatch, ready update and spoliation scan, with per-item phases
  /// deterministically sampled. Never read for decisions — the schedule is
  /// bitwise identical with and without a collector, and attaching one does
  /// not leave the independent fast path. Null costs one pointer test per
  /// scope (-DHP_OBS_OFF: nothing).
  obs::MetricsCollector* metrics = nullptr;
  /// Fault plan to inject (crashes, stragglers, task failures); the engine
  /// recovers online — aborts and re-enqueues in-flight work of crashed
  /// workers, retries failed attempts up to the plan's budget, and declares
  /// the run degraded when work cannot finish. Null or empty plans are a
  /// strict no-op: the run is bitwise identical to one without the option.
  /// The plan outlives the call; the scheduler never reads it for decisions.
  const fault::FaultPlan* faults = nullptr;
  /// Worker threads for the scheduler itself (src/par, docs/parallel.md).
  /// <= 1 keeps the sequential engines; > 1 routes independent runs through
  /// `par::heteroprio_par_run`, which shards the ready structure across this
  /// many scheduler threads. Cases the parallel engine does not cover (DAGs,
  /// fault plans, attached sinks) silently fall back to the sequential path.
  int threads = 1;
  /// Parallel tie-break contract (only read when threads > 1). Canonical
  /// mode forces the deterministic cross-shard min-(key, id) merge and is
  /// bitwise-identical to the sequential engine; free-running mode lets
  /// shards race claims for throughput and guarantees a valid schedule plus
  /// the proven makespan ratios, not identical placements.
  bool canonical = true;
};

/// Observability counters of one HeteroPrio run.
struct HeteroPrioStats {
  /// First instant a worker found no ready task (T_FirstIdle of §4.1 when
  /// spoliation is disabled). Infinity if never idle before the end.
  double first_idle_time = 0.0;
  int spoliations = 0;          ///< successful spoliations
  int spoliation_attempts = 0;  ///< idle scans that looked for a victim
  /// Idle scans skipped outright because no worker of the other resource
  /// type was busy (no victim could exist). Not counted as attempts.
  int spoliation_skips = 0;
  /// Online-recovery outcome when HeteroPrioOptions::faults was set;
  /// default-initialized (all zero, not degraded) otherwise.
  fault::RecoveryReport recovery;
};

/// Schedule `tasks` on `platform` with HeteroPrio. Deterministic.
[[nodiscard]] Schedule heteroprio(std::span<const Task> tasks,
                                  const Platform& platform,
                                  const HeteroPrioOptions& options = {},
                                  HeteroPrioStats* stats = nullptr);

}  // namespace hp
