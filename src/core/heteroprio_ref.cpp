#include "core/heteroprio_ref.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <optional>
#include <set>
#include <vector>

#include "dag/ready_tracker.hpp"
#include "sim/event_queue.hpp"
#include "sim/worker_pool.hpp"

namespace hp {

namespace detail {

namespace {

/// Queue order: *begin() is the task an idle GPU takes, *rbegin() the task
/// an idle CPU takes. Primary key: acceleration factor, non-increasing.
/// Tie-break (§2.2): for rho >= 1 the highest-priority task comes first;
/// for rho < 1 the highest-priority task comes last, i.e. nearest the CPU
/// end. Final tie: task id (determinism).
struct QueueOrder {
  std::span<const Task> tasks;

  bool operator()(TaskId a, TaskId b) const noexcept {
    const Task& ta = tasks[static_cast<std::size_t>(a)];
    const Task& tb = tasks[static_cast<std::size_t>(b)];
    const double ra = ta.accel();
    const double rb = tb.accel();
    if (ra != rb) return ra > rb;
    if (ta.priority != tb.priority) {
      return ra >= 1.0 ? ta.priority > tb.priority : ta.priority < tb.priority;
    }
    return a < b;
  }
};

struct CompletionEvent {
  WorkerId worker;
  std::uint64_t generation;  ///< stale-event filter after spoliation aborts
};

/// Strict-improvement test with a small relative margin, so that the exact
/// "equal completion time" cases of Theorems 8/11/14 (where spoliation must
/// NOT fire) are not flipped by floating-point noise.
bool strictly_better(double candidate_finish, double current_finish) noexcept {
  const double margin =
      1e-9 * std::max(1.0, std::abs(current_finish));
  return candidate_finish < current_finish - margin;
}

}  // namespace

Schedule run_heteroprio_reference(std::span<const Task> tasks,
                                  const TaskGraph* graph,
                                  const Platform& platform,
                                  const HeteroPrioOptions& options,
                                  HeteroPrioStats* stats) {
  assert(graph == nullptr || graph->tasks().size() == tasks.size());
  // Estimated times drive every decision; actual times drive the clock.
  const std::span<const Task> actuals =
      options.actual_times.empty() ? tasks : options.actual_times;
  assert(actuals.size() == tasks.size());

  Schedule schedule(tasks.size());
  HeteroPrioStats local_stats;
  local_stats.first_idle_time = std::numeric_limits<double>::infinity();

  sim::WorkerPool pool(platform);
  sim::EventQueue<CompletionEvent> events;
  std::vector<std::uint64_t> generation(
      static_cast<std::size_t>(platform.workers()), 0);

  std::set<TaskId, QueueOrder> queue{QueueOrder{tasks}};
  std::optional<ReadyTracker> tracker;
  if (graph != nullptr) {
    tracker.emplace(*graph);
    for (TaskId id : tracker->initially_ready()) queue.insert(id);
  } else {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      queue.insert(static_cast<TaskId>(i));
    }
  }

  std::size_t completed = 0;
  double now = 0.0;

  auto start_task = [&](WorkerId w, TaskId id) {
    const double dt = Platform::time_on(actuals[static_cast<std::size_t>(id)],
                                        platform.type_of(w));
    const double finish = pool.start(w, id, now, dt);
    ++generation[static_cast<std::size_t>(w)];
    events.push(finish, CompletionEvent{w, generation[static_cast<std::size_t>(w)]});
    if (options.log != nullptr) {
      options.log->record(now, sim::TraceKind::kStart, id, w);
    }
  };

  VictimOrder victim_order = options.victim_order;
  if (victim_order == VictimOrder::kAuto) {
    victim_order = graph == nullptr ? VictimOrder::kCompletionTime
                                    : VictimOrder::kPriority;
  }

  // Attempt a spoliation by idle worker `w`: scan the tasks running on the
  // other resource type — in decreasing expected completion time for
  // independent tasks (Algorithm 1), in decreasing priority for DAGs
  // (§6.2) — and steal the first one `w` would finish strictly earlier.
  // Returns true if a task was stolen.
  // Expected completion time as the *scheduler* sees it: start time plus
  // the estimated duration (equals the event time when estimates are exact).
  auto believed_finish = [&](WorkerId w) {
    const sim::Running& r = pool.running(w);
    return r.start + Platform::time_on(tasks[static_cast<std::size_t>(r.task)],
                                       platform.type_of(w));
  };

  auto try_spoliate = [&](WorkerId w) -> bool {
    ++local_stats.spoliation_attempts;
    const Resource mine = platform.type_of(w);
    std::vector<WorkerId> victims = pool.busy_workers(other(mine));
    std::sort(victims.begin(), victims.end(), [&](WorkerId a, WorkerId b) {
      const double fa = believed_finish(a);
      const double fb = believed_finish(b);
      const double pa =
          tasks[static_cast<std::size_t>(pool.running(a).task)].priority;
      const double pb =
          tasks[static_cast<std::size_t>(pool.running(b).task)].priority;
      if (victim_order == VictimOrder::kPriority) {
        if (pa != pb) return pa > pb;
        if (fa != fb) return fa > fb;
      } else {
        if (fa != fb) return fa > fb;
        if (pa != pb) return pa > pb;
      }
      return pool.running(a).task < pool.running(b).task;
    });
    for (WorkerId victim : victims) {
      const sim::Running& r = pool.running(victim);
      const double dt =
          Platform::time_on(tasks[static_cast<std::size_t>(r.task)], mine);
      if (!strictly_better(now + dt, believed_finish(victim))) continue;
      // Abort the victim's execution; its progress is lost.
      const sim::Running aborted = pool.release(victim);
      ++generation[static_cast<std::size_t>(victim)];  // stale its event
      schedule.add_aborted(aborted.task, victim, aborted.start, now);
      ++local_stats.spoliations;
      if (options.log != nullptr) {
        options.log->record(now, sim::TraceKind::kAbort, aborted.task, victim);
        options.log->record(now, sim::TraceKind::kSpoliate, aborted.task, w,
                            victim);
      }
      start_task(w, aborted.task);
      return true;
    }
    return false;
  };

  // Offer work to every idle worker (GPUs first) until a full pass changes
  // nothing. Spoliation can idle a worker of the other type mid-pass, hence
  // the outer repeat.
  auto dispatch_idle = [&] {
    bool acted = true;
    while (acted) {
      acted = false;
      for (WorkerId w : pool.idle_workers_gpu_first()) {
        if (pool.busy(w)) continue;  // filled earlier in this pass
        if (!queue.empty()) {
          TaskId id;
          if (platform.type_of(w) == Resource::kGpu) {
            id = *queue.begin();
            queue.erase(queue.begin());
          } else {
            id = *std::prev(queue.end());
            queue.erase(std::prev(queue.end()));
          }
          start_task(w, id);
          acted = true;
        } else {
          local_stats.first_idle_time =
              std::min(local_stats.first_idle_time, now);
          if (options.enable_spoliation && try_spoliate(w)) acted = true;
        }
      }
    }
  };

  dispatch_idle();

  while (completed < tasks.size()) {
    assert(!events.empty() && "deadlock: no events but tasks incomplete");
    // Pop the batch of simultaneous valid completions.
    const double t = events.top().time;
    now = t;
    while (!events.empty() && events.top().time == t) {
      const auto ev = events.pop();
      const WorkerId w = ev.payload.worker;
      if (ev.payload.generation != generation[static_cast<std::size_t>(w)]) {
        continue;  // stale: the task was spoliated away
      }
      if (!pool.busy(w)) continue;
      const sim::Running done = pool.release(w);
      schedule.place(done.task, w, done.start, done.finish);
      ++completed;
      if (options.log != nullptr) {
        options.log->record(now, sim::TraceKind::kComplete, done.task, w);
      }
      if (tracker.has_value()) {
        for (TaskId released : tracker->complete(done.task)) {
          queue.insert(released);
        }
      }
    }
    dispatch_idle();
  }

  if (stats != nullptr) {
    if (!std::isfinite(local_stats.first_idle_time)) {
      local_stats.first_idle_time = schedule.makespan();
    }
    *stats = local_stats;
  }
  return schedule;
}

}  // namespace detail

Schedule heteroprio_reference(std::span<const Task> tasks,
                              const Platform& platform,
                              const HeteroPrioOptions& options,
                              HeteroPrioStats* stats) {
  return detail::run_heteroprio_reference(tasks, nullptr, platform, options,
                                          stats);
}

Schedule heteroprio_dag_reference(const TaskGraph& graph,
                                  const Platform& platform,
                                  const HeteroPrioOptions& options,
                                  HeteroPrioStats* stats) {
  assert(graph.finalized());
  return detail::run_heteroprio_reference(graph.tasks(), &graph, platform,
                                          options, stats);
}

}  // namespace hp
