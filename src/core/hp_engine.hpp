#pragma once
// Internal: shared HeteroPrio engine for independent tasks and DAGs.
// Not part of the public API; include core/heteroprio.hpp or
// core/heteroprio_dag.hpp instead.

#include <span>

#include "core/heteroprio.hpp"
#include "dag/task_graph.hpp"

namespace hp::detail {

/// Run HeteroPrio. When `graph` is null every task of `tasks` is ready at
/// time 0; otherwise `tasks` must be graph->tasks() and readiness follows
/// the dependencies.
[[nodiscard]] Schedule run_heteroprio(std::span<const Task> tasks,
                                      const TaskGraph* graph,
                                      const Platform& platform,
                                      const HeteroPrioOptions& options,
                                      HeteroPrioStats* stats);

}  // namespace hp::detail
