#pragma once
// Internal: shared HeteroPrio engine for independent tasks and DAGs.
// Not part of the public API; include core/heteroprio.hpp or
// core/heteroprio_dag.hpp instead.

#include <cstdint>
#include <span>

#include "core/heteroprio.hpp"
#include "dag/task_graph.hpp"

namespace hp::detail {

/// Run HeteroPrio. When `graph` is null every task of `tasks` is ready at
/// time 0; otherwise `tasks` must be graph->tasks() and readiness follows
/// the dependencies.
[[nodiscard]] Schedule run_heteroprio(std::span<const Task> tasks,
                                      const TaskGraph* graph,
                                      const Platform& platform,
                                      const HeteroPrioOptions& options,
                                      HeteroPrioStats* stats);

/// Run the independent fast engine over an externally supplied ready order:
/// `order` must be the task ids sorted ascending by (key0[, key1], id) —
/// GPU end first, exactly what the engine's internal sort would produce.
/// Entry point for the parallel canonical path (src/par), which builds the
/// order with a sharded sort + deterministic merge and must then observe
/// bitwise-identical placements and counters. Preconditions as for the fast
/// path: independent tasks, no fault plan, no sink/log, 0 < workers <= 63.
[[nodiscard]] Schedule run_independent_presorted(
    std::span<const std::uint32_t> order, std::span<const Task> tasks,
    const Platform& platform, const HeteroPrioOptions& options,
    HeteroPrioStats* stats);

}  // namespace hp::detail
