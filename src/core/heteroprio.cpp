#include "core/heteroprio.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <vector>

#include "core/hp_engine.hpp"
#include "dag/ready_tracker.hpp"
#include "sim/event_queue.hpp"
#include "sim/worker_pool.hpp"

namespace hp {

namespace detail {

namespace {

/// Double-ended ready structure, a flat sorted vector in both modes. The
/// order: the GPU end (front) holds the task an idle GPU takes, the CPU end
/// (back) the task an idle CPU takes. Primary key: acceleration factor,
/// non-increasing. Tie-break (§2.2): for rho >= 1 the highest-priority task
/// comes first; for rho < 1 the highest-priority task comes last, i.e.
/// nearest the CPU end. Final tie: task id (determinism).
///
/// Independent mode knows the whole task set up front, so it presorts once
/// and pops from the two ends with cursors — O(n log n) total and O(1) per
/// pop. Incremental mode (DAG releases, crash re-enqueues, retries) used to
/// keep a std::set re-deriving both sort keys per comparison; it now
/// binary-searches the same flat vector with keys materialized once per
/// insert — no node allocation, no per-comparison divisions, and the ready
/// width of real DAGs stays far below n so the insert memmove is short. The
/// comparator is identical either way, so the pop order (and therefore the
/// schedule) is bitwise identical to the set-based implementation.
class ReadyQueue {
 public:
  explicit ReadyQueue(std::span<const Task> tasks) : tasks_(tasks) {}

  /// Independent mode: make every task ready and presort once.
  void presort_all(std::size_t n) {
    buf_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      buf_[i] = make_key(static_cast<TaskId>(i));
    }
    std::sort(buf_.begin(), buf_.end(), before);
    head_ = 0;
  }

  /// Incremental mode: a dependency release (or re-enqueue) made `id` ready.
  void insert(TaskId id) {
    const Key key = make_key(id);
    const auto first = buf_.begin() + static_cast<std::ptrdiff_t>(head_);
    const auto at = std::lower_bound(first, buf_.end(), key, before);
    if (at == first && head_ > 0) {
      buf_[--head_] = key;  // reuse the space freed by GPU-end pops
    } else {
      buf_.insert(at, key);
    }
  }

  [[nodiscard]] bool empty() const noexcept { return head_ == buf_.size(); }

  [[nodiscard]] std::size_t size() const noexcept {
    return buf_.size() - head_;
  }

  /// Most GPU-friendly ready task (an idle GPU takes this end).
  TaskId pop_gpu_end() { return buf_[head_++].id; }

  /// Most CPU-friendly ready task (an idle CPU takes this end).
  TaskId pop_cpu_end() {
    const TaskId id = buf_.back().id;
    buf_.pop_back();
    return id;
  }

 private:
  struct Key {
    double accel;
    double priority;
    TaskId id;
  };

  static bool before(const Key& a, const Key& b) noexcept {
    if (a.accel != b.accel) return a.accel > b.accel;
    if (a.priority != b.priority) {
      return a.accel >= 1.0 ? a.priority > b.priority
                            : a.priority < b.priority;
    }
    return a.id < b.id;
  }

  [[nodiscard]] Key make_key(TaskId id) const noexcept {
    const Task& t = tasks_[static_cast<std::size_t>(id)];
    return Key{t.accel(), t.priority, id};
  }

  std::span<const Task> tasks_;
  std::vector<Key> buf_;     ///< live range: [head_, buf_.size())
  std::size_t head_ = 0;
};

/// Simulation event. kCompletion is the only kind of a fault-free run; the
/// fault kinds are pushed up front from the plan (crashes, straggler window
/// edges) or during recovery (delayed retries).
struct EngineEvent {
  enum class Kind : std::uint8_t {
    kCompletion,  ///< a worker's running task reaches its end (or fail point)
    kCrash,       ///< permanent loss of `worker`
    kSlowBegin,   ///< straggler window opens on `worker` (`value` = slowdown)
    kSlowEnd,     ///< straggler window closes on `worker`
    kRetry,       ///< backoff elapsed: `task` re-enters the ready queue
  };
  Kind kind = Kind::kCompletion;
  WorkerId worker = -1;
  TaskId task = kInvalidTask;
  std::uint64_t generation = 0;  ///< stale-event filter after aborts
  double value = 0.0;
};

/// Cached spoliation-scan key of one running task. `finish` is the believed
/// completion time (start + *estimated* duration), computed once at start
/// instead of re-deriving Platform::time_on per comparison.
struct VictimKey {
  double finish = 0.0;
  double priority = 0.0;
  TaskId task = kInvalidTask;
  WorkerId worker = -1;
};

/// Scan order of Algorithm 1 / §6.2: decreasing believed completion time
/// with priority tie-break (independent), or decreasing priority with
/// completion-time tie-break (DAGs). Final tie: task id, so the order is
/// total and the incremental set reproduces the reference sort exactly.
struct VictimLess {
  bool priority_first = false;

  bool operator()(const VictimKey& a, const VictimKey& b) const noexcept {
    if (priority_first) {
      if (a.priority != b.priority) return a.priority > b.priority;
      if (a.finish != b.finish) return a.finish > b.finish;
    } else {
      if (a.finish != b.finish) return a.finish > b.finish;
      if (a.priority != b.priority) return a.priority > b.priority;
    }
    return a.task < b.task;
  }
};

/// The per-resource running set, ordered by VictimLess. A flat sorted vector
/// rather than a node-based set: the capacity is bounded by the worker count
/// of one resource, so a binary-search insert plus a short memmove is both
/// O(log W) in comparisons and allocation-free — the std::set node churn was
/// measurable at 2 ops per scheduled task.
class RunningSet {
 public:
  RunningSet(VictimLess less, std::size_t max_workers) : less_(less) {
    keys_.reserve(max_workers);
  }

  void insert(const VictimKey& key) {
    keys_.insert(std::lower_bound(keys_.begin(), keys_.end(), key, less_),
                 key);
  }

  void erase(const VictimKey& key) {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key, less_);
    assert(it != keys_.end() && it->worker == key.worker);
    keys_.erase(it);
  }

  [[nodiscard]] auto begin() const noexcept { return keys_.begin(); }
  [[nodiscard]] auto end() const noexcept { return keys_.end(); }

 private:
  VictimLess less_;
  std::vector<VictimKey> keys_;
};

/// Strict-improvement test with a small relative margin, so that the exact
/// "equal completion time" cases of Theorems 8/11/14 (where spoliation must
/// NOT fire) are not flipped by floating-point noise.
bool strictly_better(double candidate_finish, double current_finish) noexcept {
  const double margin =
      1e-9 * std::max(1.0, std::abs(current_finish));
  return candidate_finish < current_finish - margin;
}

}  // namespace

Schedule run_heteroprio(std::span<const Task> tasks, const TaskGraph* graph,
                        const Platform& platform,
                        const HeteroPrioOptions& options,
                        HeteroPrioStats* stats) {
  assert(graph == nullptr || graph->tasks().size() == tasks.size());
  // Estimated times drive every decision; actual times drive the clock.
  const std::span<const Task> actuals =
      options.actual_times.empty() ? tasks : options.actual_times;
  assert(actuals.size() == tasks.size());

  Schedule schedule(tasks.size());
  HeteroPrioStats local_stats;
  local_stats.first_idle_time = std::numeric_limits<double>::infinity();

  // Route events through a stack fanout only when both a scheduler sink and
  // an enabled legacy log are present; otherwise the probe points straight
  // at whichever is live, keeping the hot path at one pointer test.
  sim::TimelineLog* log =
      (options.log != nullptr && options.log->enabled()) ? options.log
                                                         : nullptr;
  obs::FanoutSink fanout(options.sink, log);
  obs::EventSink* sink = options.sink;
  if (sink != nullptr && log != nullptr) {
    sink = &fanout;
  } else if (sink == nullptr) {
    sink = log;
  }
  const obs::Probe probe(sink);

  // Fault injection is entirely gated on `faulty`: with no plan (or an
  // empty one) not a single extra event is pushed, no extra state is
  // allocated and every branch below folds to its pre-fault form, keeping
  // the run bitwise identical — the regression-tested no-op guarantee.
  const fault::FaultPlan* plan = options.faults;
  const bool faulty = plan != nullptr && !plan->empty();

  sim::WorkerPool pool(platform);
  pool.attach_sink(sink);
  sim::EventQueue<EngineEvent> events;
  std::vector<std::uint64_t> generation(
      static_cast<std::size_t>(platform.workers()), 0);

  // Per-worker flag: the attempt currently running on the worker will abort
  // at its (already shortened) completion event. Per-task failed-attempt
  // counts drive the retry budget. Both exist only on faulty runs.
  std::vector<char> pending_fail;
  std::vector<int> failed_attempts;
  if (faulty) {
    pending_fail.assign(static_cast<std::size_t>(platform.workers()), 0);
    failed_attempts.assign(tasks.size(), 0);
    for (const fault::CrashEvent& c : plan->crashes()) {
      if (c.worker < 0 || c.worker >= platform.workers()) continue;
      events.push(c.time, EngineEvent{EngineEvent::Kind::kCrash, c.worker,
                                      kInvalidTask, 0, 0.0});
    }
    for (const fault::StragglerWindow& win : plan->stragglers()) {
      if (win.worker < 0 || win.worker >= platform.workers()) continue;
      events.push(win.begin,
                  EngineEvent{EngineEvent::Kind::kSlowBegin, win.worker,
                              kInvalidTask, 0, win.slowdown});
      events.push(win.end, EngineEvent{EngineEvent::Kind::kSlowEnd, win.worker,
                                       kInvalidTask, 0, 0.0});
    }
  }

  ReadyQueue queue(tasks);
  std::optional<ReadyTracker> tracker;
  if (graph != nullptr) {
    tracker.emplace(*graph);
    for (TaskId id : tracker->initially_ready()) {
      queue.insert(id);
      probe.ready(0.0, id);
    }
  } else if (faulty) {
    // Crash re-enqueues and retries re-insert into the ready structure, so
    // the flat presorted form (pop-only) cannot be used; the ordered set
    // yields the same queue order with O(log n) inserts.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      queue.insert(static_cast<TaskId>(i));
      probe.ready(0.0, static_cast<TaskId>(i));
    }
  } else {
    queue.presort_all(tasks.size());
    if (probe) {
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        probe.ready(0.0, static_cast<TaskId>(i));
      }
    }
  }

  VictimOrder victim_order = options.victim_order;
  if (victim_order == VictimOrder::kAuto) {
    victim_order = graph == nullptr ? VictimOrder::kCompletionTime
                                    : VictimOrder::kPriority;
  }

  // Incremental per-resource running sets in spoliation-scan order, updated
  // on start/release in O(log W) — replaces collecting and sorting the busy
  // workers of the other type on every spoliation attempt.
  const VictimLess victim_less{victim_order == VictimOrder::kPriority};
  RunningSet running_set[2] = {
      RunningSet(victim_less, static_cast<std::size_t>(platform.cpus())),
      RunningSet(victim_less, static_cast<std::size_t>(platform.gpus()))};
  std::vector<VictimKey> victim_key(
      static_cast<std::size_t>(platform.workers()));

  std::size_t completed = 0;
  double now = 0.0;

  auto start_task = [&](WorkerId w, TaskId id) {
    const Resource res = platform.type_of(w);
    double dt = Platform::time_on(actuals[static_cast<std::size_t>(id)], res);
    if (faulty) {
      // The injected reality: a pre-drawn failure truncates the attempt's
      // work, and straggler windows stretch wall-clock time around it. The
      // believed VictimKey below still uses the plain estimate — the
      // scheduler never reads the plan.
      const fault::AttemptOutcome outcome = plan->attempt_outcome(
          id, failed_attempts[static_cast<std::size_t>(id)]);
      if (outcome.fails) {
        dt *= outcome.fail_fraction;
        pending_fail[static_cast<std::size_t>(w)] = 1;
      }
      dt = plan->finish_time(w, now, dt) - now;
    }
    const double finish = pool.start(w, id, now, dt);
    ++generation[static_cast<std::size_t>(w)];
    events.push(finish,
                EngineEvent{EngineEvent::Kind::kCompletion, w, id,
                            generation[static_cast<std::size_t>(w)], 0.0});
    const Task& estimate = tasks[static_cast<std::size_t>(id)];
    const VictimKey key{now + Platform::time_on(estimate, res),
                        estimate.priority, id, w};
    victim_key[static_cast<std::size_t>(w)] = key;
    running_set[static_cast<std::size_t>(res)].insert(key);
    probe.start(now, id, w);
  };

  auto release_worker = [&](WorkerId w) -> sim::Running {
    running_set[static_cast<std::size_t>(platform.type_of(w))].erase(
        victim_key[static_cast<std::size_t>(w)]);
    if (faulty) pending_fail[static_cast<std::size_t>(w)] = 0;
    return pool.release_at(w, now);
  };

  // Attempt a spoliation by idle worker `w`: walk the running set of the
  // other resource type in scan order and steal the first task `w` would
  // finish strictly earlier. Returns true if a task was stolen.
  auto try_spoliate = [&](WorkerId w) -> bool {
    ++local_stats.spoliation_attempts;
    probe.spoliate_attempt(now, w);
    const Resource mine = platform.type_of(w);
    const auto& candidates = running_set[static_cast<std::size_t>(other(mine))];
    for (const VictimKey& key : candidates) {
      const double dt =
          Platform::time_on(tasks[static_cast<std::size_t>(key.task)], mine);
      double believed_finish = key.finish;
      if (faulty && believed_finish <= now) {
        // The victim is overdue — a straggler window stretched it past its
        // believed finish. Re-believe from the estimate as if it restarted
        // now, so a healthy worker can still rescue the task; otherwise
        // "candidate < past instant" never holds and stragglers hold their
        // work hostage forever.
        believed_finish =
            now + Platform::time_on(
                      tasks[static_cast<std::size_t>(key.task)], other(mine));
      }
      if (!strictly_better(now + dt, believed_finish)) continue;
      // Abort the victim's execution; its progress is lost.
      const WorkerId victim = key.worker;
      const sim::Running aborted = release_worker(victim);
      ++generation[static_cast<std::size_t>(victim)];  // stale its event
      schedule.add_aborted(aborted.task, victim, aborted.start, now);
      ++local_stats.spoliations;
      probe.abort(now, aborted.task, victim);
      probe.spoliate_commit(now, aborted.task, w, victim);
      start_task(w, aborted.task);
      return true;
    }
    return false;
  };

  // Offer work to every idle worker (GPUs first) until a full pass changes
  // nothing. Spoliation can idle a worker of the other type mid-pass, hence
  // the outer repeat.
  std::vector<WorkerId> idle_scratch;
  auto dispatch_idle = [&] {
    bool acted = true;
    while (acted) {
      acted = false;
      pool.idle_workers_gpu_first(idle_scratch);
      for (WorkerId w : idle_scratch) {
        if (pool.busy(w)) continue;  // filled earlier in this pass
        if (!queue.empty()) {
          const TaskId id = platform.type_of(w) == Resource::kGpu
                                ? queue.pop_gpu_end()
                                : queue.pop_cpu_end();
          start_task(w, id);
          acted = true;
        } else {
          local_stats.first_idle_time =
              std::min(local_stats.first_idle_time, now);
          if (!options.enable_spoliation) continue;
          // No victim can exist while the other resource is fully idle;
          // skip the scan outright (the common case once the queue drains).
          if (pool.busy_count(other(platform.type_of(w))) == 0) {
            ++local_stats.spoliation_skips;
            probe.spoliate_skip(now, w);
          } else if (try_spoliate(w)) {
            acted = true;
          }
        }
      }
    }
  };

  // Queue-depth samples bracket every dispatch: the pre-sample captures the
  // peak after a ready burst, the post-sample the steady-state backlog.
  auto dispatch_and_sample = [&] {
    probe.queue_depth(now, queue.size());
    dispatch_idle();
    probe.queue_depth(now, queue.size());
  };

  // One completed attempt popped from the event queue. On a fault-free run
  // every valid completion places the task; on a faulty run the attempt may
  // instead be an injected failure — the progress is recorded as an aborted
  // segment and the task retried (after the plan's backoff) until its
  // attempt budget runs out.
  auto handle_completion = [&](const EngineEvent& ev) {
    const WorkerId w = ev.worker;
    if (ev.generation != generation[static_cast<std::size_t>(w)]) {
      return;  // stale: the task was spoliated or crashed away
    }
    if (!pool.busy(w)) return;
    const bool attempt_failed =
        faulty && pending_fail[static_cast<std::size_t>(w)] != 0;
    const sim::Running done = release_worker(w);
    if (attempt_failed) {
      schedule.add_aborted(done.task, w, done.start, now);
      const int failures = ++failed_attempts[static_cast<std::size_t>(done.task)];
      ++local_stats.recovery.task_failures;
      probe.task_fail(now, done.task, w, failures - 1);
      if (failures >= plan->max_attempts()) {
        ++local_stats.recovery.tasks_abandoned;
        return;  // budget exhausted: the task stays unfinished
      }
      ++local_stats.recovery.task_retries;
      const double delay = plan->backoff_delay(failures);
      if (delay > 0.0) {
        events.push(now + delay, EngineEvent{EngineEvent::Kind::kRetry, -1,
                                             done.task, 0, 0.0});
      } else {
        probe.task_retry(now, done.task, failures);
        queue.insert(done.task);
        probe.ready(now, done.task);
      }
      return;
    }
    schedule.place(done.task, w, done.start, done.finish);
    ++completed;
    probe.complete(now, done.task, w);
    if (tracker.has_value()) {
      for (TaskId released : tracker->complete(done.task)) {
        queue.insert(released);
        probe.ready(now, released);
      }
    }
  };

  // Permanent loss of a worker: abort whatever it runs (re-enqueued with no
  // charge against the task's retry budget — the task did nothing wrong)
  // and remove the worker from the pool, so dispatch and spoliation see
  // only the surviving platform from here on.
  auto handle_crash = [&](WorkerId w) {
    if (pool.failed(w)) return;
    ++local_stats.recovery.worker_crashes;
    if (pool.busy(w)) {
      const sim::Running victim = release_worker(w);
      ++generation[static_cast<std::size_t>(w)];  // stale its completion
      schedule.add_aborted(victim.task, w, victim.start, now);
      probe.abort(now, victim.task, w);
      queue.insert(victim.task);
      probe.ready(now, victim.task);
      ++local_stats.recovery.crash_requeues;
    }
    pool.mark_failed(w);
    probe.worker_crash(now, w);
  };

  dispatch_and_sample();

  while (completed < tasks.size()) {
    if (events.empty()) {
      // Only reachable under faults: every remaining task lost its workers
      // or its retry budget. Fault-free runs always hold an event per
      // incomplete task's worker.
      assert(faulty && "deadlock: no events but tasks incomplete");
      break;
    }
    // Pop the batch of simultaneous valid events. Within a batch, queue
    // order (push sequence) decides: a crash pushed at init pops before a
    // completion at the same instant, so crash-vs-finish ties go to the
    // crash, deterministically.
    const double t = events.top().time;
    now = t;
    while (!events.empty() && events.top().time == t) {
      const auto ev = events.pop();
      switch (ev.payload.kind) {
        case EngineEvent::Kind::kCompletion:
          handle_completion(ev.payload);
          break;
        case EngineEvent::Kind::kCrash:
          handle_crash(ev.payload.worker);
          break;
        case EngineEvent::Kind::kSlowBegin:
          ++local_stats.recovery.straggler_windows;
          probe.worker_slow_begin(now, ev.payload.worker, ev.payload.value);
          break;
        case EngineEvent::Kind::kSlowEnd:
          probe.worker_slow_end(now, ev.payload.worker);
          break;
        case EngineEvent::Kind::kRetry:
          probe.task_retry(
              now, ev.payload.task,
              failed_attempts[static_cast<std::size_t>(ev.payload.task)]);
          queue.insert(ev.payload.task);
          probe.ready(now, ev.payload.task);
          break;
      }
    }
    dispatch_and_sample();
  }

  if (completed < tasks.size()) {
    local_stats.recovery.tasks_unfinished =
        static_cast<int>(tasks.size() - completed);
    local_stats.recovery.degraded = true;
    probe.run_degraded(now, local_stats.recovery.tasks_unfinished);
  }

  if (stats != nullptr) {
    if (!std::isfinite(local_stats.first_idle_time)) {
      local_stats.first_idle_time = schedule.makespan();
    }
    *stats = local_stats;
  }
  return schedule;
}

}  // namespace detail

Schedule heteroprio(std::span<const Task> tasks, const Platform& platform,
                    const HeteroPrioOptions& options, HeteroPrioStats* stats) {
  return detail::run_heteroprio(tasks, nullptr, platform, options, stats);
}

}  // namespace hp
