#include "core/heteroprio.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/engine_parts.hpp"
#include "core/hp_engine.hpp"
#include "par/heteroprio_par.hpp"
#include "dag/ready_tracker.hpp"
#include "model/task_soa.hpp"
#include "obs/profile.hpp"
#include "sim/event_queue.hpp"
#include "sim/worker_pool.hpp"
#include "util/arena.hpp"
#include "util/key_sort.hpp"

#if defined(__SSE2__) && !defined(HP_NO_SIMD)
#include <emmintrin.h>
#define HP_ENGINE_SSE2 1
#endif

namespace hp {

namespace detail {

namespace {

// ReadyQueue, VictimKey/VictimLess, RunningSet and strictly_better moved to
// core/engine_parts.hpp so the online runtime shares them verbatim.

/// Simulation event. kCompletion is the only kind of a fault-free run; the
/// fault kinds are pushed up front from the plan (crashes, straggler window
/// edges) or during recovery (delayed retries).
struct EngineEvent {
  enum class Kind : std::uint8_t {
    kCompletion,  ///< a worker's running task reaches its end (or fail point)
    kCrash,       ///< permanent loss of `worker`
    kSlowBegin,   ///< straggler window opens on `worker` (`value` = slowdown)
    kSlowEnd,     ///< straggler window closes on `worker`
    kRetry,       ///< backoff elapsed: `task` re-enters the ready queue
  };
  Kind kind = Kind::kCompletion;
  WorkerId worker = -1;
  TaskId task = kInvalidTask;
  std::uint64_t generation = 0;  ///< stale-event filter after aborts
  double value = 0.0;
};

/// Earliest entry of `finish` (idle lanes hold +inf; `count` is padded to a
/// multiple of two with +inf). The scalar min loop is a serial minsd
/// dependency chain — at ~4 cycles per link it dominates the engine's inner
/// loop — so the SSE2 form runs two independent accumulator chains.
double min_finish_time(const double* finish, std::size_t count) noexcept {
#ifdef HP_ENGINE_SSE2
  __m128d acc0 = _mm_loadu_pd(finish);
  __m128d acc1 = acc0;
  std::size_t w = 2;
  for (; w + 4 <= count; w += 4) {
    acc0 = _mm_min_pd(acc0, _mm_loadu_pd(finish + w));
    acc1 = _mm_min_pd(acc1, _mm_loadu_pd(finish + w + 2));
  }
  for (; w + 2 <= count; w += 2) {
    acc0 = _mm_min_pd(acc0, _mm_loadu_pd(finish + w));
  }
  acc0 = _mm_min_pd(acc0, acc1);
  acc0 = _mm_min_sd(acc0, _mm_unpackhi_pd(acc0, acc0));
  return _mm_cvtsd_f64(acc0);
#else
  double t = finish[0];
  for (std::size_t w = 1; w < count; ++w) t = std::min(t, finish[w]);
  return t;
#endif
}

/// Bitmask of lanes with finish[w] == t (the completion batch at instant t).
std::uint64_t equal_finish_mask(const double* finish, std::size_t count,
                                double t) noexcept {
  std::uint64_t mask = 0;
#ifdef HP_ENGINE_SSE2
  const __m128d vt = _mm_set1_pd(t);
  for (std::size_t w = 0; w + 2 <= count; w += 2) {
    const int bits = _mm_movemask_pd(_mm_cmpeq_pd(_mm_loadu_pd(finish + w), vt));
    mask |= static_cast<std::uint64_t>(bits) << w;
  }
#else
  for (std::size_t w = 0; w < count; ++w) {
    if (finish[w] == t) mask |= std::uint64_t{1} << w;
  }
#endif
  return mask;
}

/// Heap-free engine for the unobserved independent fault-free case (the
/// throughput path of BENCH_core.json). Preconditions checked by the caller:
/// no graph, no fault plan, no live sink or log, 0 < workers <= 63.
///
/// What makes it fast — and why each step is schedule-preserving:
///  - The ready queue is a presorted id array with two cursors; the sort key
///    is the packed (key0, key1) order, equivalent to the §2.2 comparator.
///  - The event heap is gone. Without a sink or a ReadyTracker, the only
///    observable effect of the pop order *within* one time batch is the set
///    of placements and counters, and those depend only on the batch as a
///    whole (the general loop also drains the full batch before
///    dispatching). A min-scan over per-worker finish times yields the same
///    batch at the same instant.
///  - Worker state is four flat arrays plus idle bitmasks; dispatch
///    snapshots the masks per pass, which reproduces
///    idle_workers_gpu_first() exactly (a victim freed mid-pass is served on
///    the next pass, not the current one).
///  - The running sets are not maintained incrementally: a spoliation
///    attempt gathers the <= 63 busy workers of the other type and sorts
///    them with the same total VictimLess order, giving the identical scan
///    sequence on demand.
void simulate_independent(const std::uint32_t* order, std::size_t n,
                          std::span<const Task> tasks,
                          std::span<const Task> actuals,
                          const Platform& platform,
                          const HeteroPrioOptions& options,
                          VictimOrder victim_order, Schedule& schedule,
                          HeteroPrioStats& stats, util::Arena& arena) {
  const int workers = platform.workers();
  const auto wcount = static_cast<std::size_t>(workers);
  const int cpus = platform.cpus();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::size_t q_gpu = 0;  ///< next GPU-end pop
  std::size_t q_cpu = n;  ///< next CPU-end pop is order[q_cpu - 1]

  // Permute the per-task scalars into queue order. The loop then reads task
  // data at two sequentially moving fronts instead of at random task ids —
  // the batched gather here eats the cache misses once, overlapped by
  // out-of-order execution, rather than one serialized miss per decision.
  double* qcpu = arena.alloc<double>(n);   ///< estimate p, queue order
  double* qgpu = arena.alloc<double>(n);   ///< estimate q, queue order
  double* qpri = arena.alloc<double>(n);   ///< priority, queue order
  constexpr std::size_t kGatherAhead = 16;
  for (std::size_t k = 0; k < n; ++k) {
    if (k + kGatherAhead < n) {
      __builtin_prefetch(&tasks[order[k + kGatherAhead]]);
    }
    const Task& t = tasks[order[k]];
    qcpu[k] = t.cpu_time;
    qgpu[k] = t.gpu_time;
    qpri[k] = t.priority;
  }
  const double* qacpu = qcpu;  ///< actual durations (alias when no noise)
  const double* qagpu = qgpu;
  if (actuals.data() != tasks.data()) {
    double* ac = arena.alloc<double>(n);
    double* ag = arena.alloc<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      if (k + kGatherAhead < n) {
        __builtin_prefetch(&actuals[order[k + kGatherAhead]]);
      }
      const Task& t = actuals[order[k]];
      ac[k] = t.cpu_time;
      ag[k] = t.gpu_time;
    }
    qacpu = ac;
    qagpu = ag;
  }
  // Placements in queue order, scattered into the Schedule at the end (the
  // by-task layout is the output format; writing it mid-loop is one cache
  // miss per completion).
  Placement* qplace = arena.alloc<Placement>(n);

  // Worker state, SoA. wfinish doubles as the event structure: +inf = idle;
  // it is padded to an even lane count for the SSE2 scans.
  const std::size_t wpad = (wcount + 1) & ~std::size_t{1};
  double* wfinish = arena.alloc<double>(wpad);
  double* wstart = arena.alloc<double>(wcount);
  double* wbelief = arena.alloc<double>(wcount);  ///< believed finish
  std::uint32_t* wqpos = arena.alloc<std::uint32_t>(wcount);  ///< queue pos
  for (std::size_t w = 0; w < wpad; ++w) wfinish[w] = kInf;

  const std::uint64_t all_mask =
      workers == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << workers) - 1;
  const std::uint64_t cpu_mask = (std::uint64_t{1} << cpus) - 1;
  const std::uint64_t gpu_mask = all_mask & ~cpu_mask;
  std::uint64_t idle_mask = all_mask;
  int busy_by_type[2] = {0, 0};

  const bool spoliation = options.enable_spoliation;
  const VictimLess victim_less{victim_order == VictimOrder::kPriority};
  VictimKey* victims = arena.alloc<VictimKey>(wcount);

  // Stale-event wakeups. In the general loop a spoliated victim's pending
  // completion event stays in the heap; popping it later is a no-op for the
  // schedule but still runs a dispatch at that instant, and an idle worker
  // seen by that dispatch counts a spoliation attempt or skip. To keep the
  // counters bitwise identical the fast engine remembers each victim's
  // abandoned finish time and wakes at it too.
  util::ArenaVector<double> phantom_wakeups(arena);

  std::size_t completed = 0;
  double now = 0.0;
  double first_idle = kInf;

  const auto start_task = [&](int w, std::uint32_t qpos) {
    const bool is_gpu = w >= cpus;
    const auto k = static_cast<std::size_t>(qpos);
    const auto wi = static_cast<std::size_t>(w);
    wfinish[wi] = now + (is_gpu ? qagpu[k] : qacpu[k]);
    wbelief[wi] = now + (is_gpu ? qgpu[k] : qcpu[k]);
    wstart[wi] = now;
    wqpos[wi] = qpos;
    idle_mask &= ~(std::uint64_t{1} << w);
    ++busy_by_type[is_gpu ? 1 : 0];
  };

  const auto try_spoliate = [&](int w) -> bool {
    const obs::PhaseScope scan_scope(options.metrics,
                                     obs::Phase::kSpoliationScan);
    ++stats.spoliation_attempts;
    const bool is_gpu = w >= cpus;
    // Gather the running set of the other resource and order it on demand;
    // VictimLess is total, so this equals the incremental set's scan order.
    std::uint64_t busy_other = ~idle_mask & (is_gpu ? cpu_mask : gpu_mask);
    std::size_t count = 0;
    while (busy_other != 0) {
      const int v = std::countr_zero(busy_other);
      busy_other &= busy_other - 1;
      const auto vi = static_cast<std::size_t>(v);
      const auto k = static_cast<std::size_t>(wqpos[vi]);
      victims[count++] = VictimKey{wbelief[vi], qpri[k],
                                   static_cast<TaskId>(order[k]), v};
    }
    std::sort(victims, victims + count, victim_less);
    for (std::size_t c = 0; c < count; ++c) {
      const VictimKey& key = victims[c];
      const auto vi = static_cast<std::size_t>(key.worker);
      const auto k = static_cast<std::size_t>(wqpos[vi]);
      const double dt = is_gpu ? qgpu[k] : qcpu[k];
      if (!strictly_better(now + dt, key.finish)) continue;
      // Abort the victim's execution; its progress is lost.
      schedule.add_aborted(key.task, key.worker, wstart[vi], now);
      phantom_wakeups.push_back(wfinish[vi]);
      wfinish[vi] = kInf;
      idle_mask |= std::uint64_t{1} << key.worker;
      --busy_by_type[key.worker >= cpus ? 1 : 0];
      ++stats.spoliations;
      start_task(w, wqpos[vi]);
      return true;
    }
    return false;
  };

  const auto dispatch_idle = [&] {
    bool acted = true;
    while (acted) {
      acted = false;
      // Snapshot per pass: workers idled by a spoliation during this pass
      // wait for the next one, exactly like idle_workers_gpu_first().
      const std::uint64_t snap_gpu = idle_mask & gpu_mask;
      const std::uint64_t snap_cpu = idle_mask & cpu_mask;
      for (int half = 0; half < 2; ++half) {
        std::uint64_t snap = half == 0 ? snap_gpu : snap_cpu;
        const bool is_gpu = half == 0;
        while (snap != 0) {
          const int w = std::countr_zero(snap);
          snap &= snap - 1;
          if ((idle_mask >> w & 1) == 0) continue;  // filled this pass
          if (q_gpu != q_cpu) {
            const std::uint32_t qpos = static_cast<std::uint32_t>(
                is_gpu ? q_gpu++ : --q_cpu);
            start_task(w, qpos);
            acted = true;
          } else {
            first_idle = std::min(first_idle, now);
            if (!spoliation) continue;
            if (busy_by_type[is_gpu ? 0 : 1] == 0) {
              ++stats.spoliation_skips;
            } else if (try_spoliate(w)) {
              acted = true;
            }
          }
        }
      }
    }
  };

  // Timed wrapper for the full dispatch passes. The one-idle fast path in
  // the loop below stays uninstrumented on purpose: it is the per-task
  // steady state of the >10M tasks/s engine, where even a sampled scope
  // entry would be a measurable fraction of the ~100ns budget.
  const auto dispatch_timed = [&] {
    const obs::PhaseScope dispatch_scope(options.metrics,
                                         obs::Phase::kDispatch);
    dispatch_idle();
  };

  dispatch_timed();

  while (completed < n) {
    // Next instant: min over the finish array (idle lanes are +inf) and the
    // stale wakeups. The batch at that instant replaces the event heap.
    double t = min_finish_time(wfinish, wpad);
    if (!phantom_wakeups.empty()) {
      for (const double d : phantom_wakeups) t = std::min(t, d);
    }
    assert(t != kInf && "no running worker but tasks incomplete");
    now = t;
    if (!phantom_wakeups.empty()) {
      for (std::size_t i = 0; i < phantom_wakeups.size();) {
        if (phantom_wakeups[i] == t) {
          phantom_wakeups[i] = phantom_wakeups.back();
          phantom_wakeups.pop_back();
        } else {
          ++i;
        }
      }
    }
    std::uint64_t done = equal_finish_mask(wfinish, wpad, t) & all_mask;
    while (done != 0) {
      const int w = std::countr_zero(done);
      done &= done - 1;
      const auto wi = static_cast<std::size_t>(w);
      qplace[wqpos[wi]] = Placement{w, wstart[wi], t};
      wfinish[wi] = kInf;
      idle_mask |= std::uint64_t{1} << w;
      --busy_by_type[w >= cpus ? 1 : 0];
      ++completed;
    }
    // One-idle fast path: with a single freed worker and a nonempty queue,
    // dispatch_idle reduces to exactly one start_task — the snapshot/pass
    // machinery only changes behavior when several workers are idle or the
    // queue is empty (spoliation).
    if (q_gpu != q_cpu && std::popcount(idle_mask) == 1) {
      const int w = std::countr_zero(idle_mask);
      start_task(w,
                 static_cast<std::uint32_t>(w >= cpus ? q_gpu++ : --q_cpu));
    } else {
      dispatch_timed();
    }
  }

  // One batched scatter back to the by-task output layout. The writes land
  // at random task ids; prefetching the target lines ahead overlaps the
  // misses the same way the forward gather did.
  for (std::size_t k = 0; k < n; ++k) {
    if (k + kGatherAhead < n) {
      __builtin_prefetch(&schedule.placement(
          static_cast<TaskId>(order[k + kGatherAhead])), 1);
    }
    const Placement& p = qplace[k];
    schedule.place(static_cast<TaskId>(order[k]), p.worker, p.start, p.end);
  }

  stats.first_idle_time = first_idle;
}

/// Sort wrapper over simulate_independent: build the ready order from the
/// prebuilt key elements (ids = task index from the fused build_sort_keys
/// pass), then run the simulation over it.
void run_independent_fast(const soa::SortKeys& sort_keys,
                          std::span<const Task> tasks,
                          std::span<const Task> actuals,
                          const Platform& platform,
                          const HeteroPrioOptions& options,
                          VictimOrder victim_order, Schedule& schedule,
                          HeteroPrioStats& stats, util::Arena& arena) {
  const std::size_t n = sort_keys.size;
  // Ready order: ids sorted GPU-end-first. Uniform priorities collapse the
  // pair key to key0 with a stable id tie-break.
  std::uint32_t* order = arena.alloc<std::uint32_t>(n);
  {
    const obs::PhaseScope sort_scope(options.metrics, obs::Phase::kSort);
    if (sort_keys.uniform_priority) {
      util::sort_key_id({sort_keys.key_id, n}, arena);
      for (std::size_t i = 0; i < n; ++i) order[i] = sort_keys.key_id[i].id;
    } else {
      util::sort_key2_id({sort_keys.key2_id, n}, arena);
      for (std::size_t i = 0; i < n; ++i) order[i] = sort_keys.key2_id[i].id;
    }
  }
  simulate_independent(order, n, tasks, actuals, platform, options,
                       victim_order, schedule, stats, arena);
}

}  // namespace

Schedule run_independent_presorted(std::span<const std::uint32_t> order,
                                   std::span<const Task> tasks,
                                   const Platform& platform,
                                   const HeteroPrioOptions& options,
                                   HeteroPrioStats* stats) {
  assert(order.size() == tasks.size());
  assert(platform.workers() > 0 && platform.workers() <= 63);
  assert(options.sink == nullptr &&
         (options.log == nullptr || !options.log->enabled()) &&
         (options.faults == nullptr || options.faults->empty()));
  const std::span<const Task> actuals =
      options.actual_times.empty() ? tasks : options.actual_times;
  assert(actuals.size() == tasks.size());

  Schedule schedule(tasks.size());
  HeteroPrioStats local_stats;
  local_stats.first_idle_time = std::numeric_limits<double>::infinity();

  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope arena_scope(arena);
  const obs::PhaseScope engine_scope(options.metrics, obs::Phase::kEngine);

  VictimOrder victim_order = options.victim_order;
  if (victim_order == VictimOrder::kAuto) {
    victim_order = VictimOrder::kCompletionTime;
  }
  simulate_independent(order.data(), order.size(), tasks, actuals, platform,
                       options, victim_order, schedule, local_stats, arena);
  if (stats != nullptr) {
    if (!std::isfinite(local_stats.first_idle_time)) {
      local_stats.first_idle_time = schedule.makespan();
    }
    *stats = local_stats;
  }
  return schedule;
}

Schedule run_heteroprio(std::span<const Task> tasks, const TaskGraph* graph,
                        const Platform& platform,
                        const HeteroPrioOptions& options,
                        HeteroPrioStats* stats) {
  assert(graph == nullptr || graph->tasks().size() == tasks.size());
  // Estimated times drive every decision; actual times drive the clock.
  const std::span<const Task> actuals =
      options.actual_times.empty() ? tasks : options.actual_times;
  assert(actuals.size() == tasks.size());

  Schedule schedule(tasks.size());
  HeteroPrioStats local_stats;
  local_stats.first_idle_time = std::numeric_limits<double>::infinity();

  // All per-run scratch (SoA arrays, ready keys, running sets, worker
  // state) lives on the per-thread arena and is released when this scope
  // unwinds — see docs/perf.md "Arena lifetime".
  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope arena_scope(arena);

  // Self-profiling. Timings never feed back into decisions, so the
  // schedule stays bitwise identical with a collector attached — and
  // attaching one does not disqualify the independent fast path below.
  obs::MetricsCollector* const metrics = options.metrics;
  const obs::PhaseScope engine_scope(metrics, obs::Phase::kEngine);

  // Route events through a stack fanout only when both a scheduler sink and
  // an enabled legacy log are present; otherwise the probe points straight
  // at whichever is live, keeping the hot path at one pointer test.
  sim::TimelineLog* log =
      (options.log != nullptr && options.log->enabled()) ? options.log
                                                         : nullptr;
  obs::FanoutSink fanout(options.sink, log);
  obs::EventSink* sink = options.sink;
  if (sink != nullptr && log != nullptr) {
    sink = &fanout;
  } else if (sink == nullptr) {
    sink = log;
  }
  const obs::Probe probe(sink);

  // Fault injection is entirely gated on `faulty`: with no plan (or an
  // empty one) not a single extra event is pushed, no extra state is
  // allocated and every branch below folds to its pre-fault form, keeping
  // the run bitwise identical — the regression-tested no-op guarantee.
  const fault::FaultPlan* plan = options.faults;
  const bool faulty = plan != nullptr && !plan->empty();

  VictimOrder victim_order = options.victim_order;
  if (victim_order == VictimOrder::kAuto) {
    victim_order = graph == nullptr ? VictimOrder::kCompletionTime
                                    : VictimOrder::kPriority;
  }

  // Unobserved independent fault-free runs — the >10M tasks/s throughput
  // path — take the heap-free bitmask engine. Everything it skips (event
  // queue, probes, tracker, incremental running sets) is unobservable under
  // these preconditions, so the schedule and counters are bitwise identical
  // to the general loop below (pinned by test_soa_regression).
  if (graph == nullptr && !faulty && sink == nullptr && platform.workers() > 0 &&
      platform.workers() <= 63) {
    // Keys-only build: this path gathers durations from the AoS records in
    // queue order and never reads the flat SoA arrays.
    const soa::SortKeys sort_keys = [&] {
      const obs::PhaseScope key_scope(metrics, obs::Phase::kKeyBuild);
      return soa::build_sort_keys(tasks, arena);
    }();
    run_independent_fast(sort_keys, tasks, actuals, platform, options,
                         victim_order, schedule, local_stats, arena);
    if (stats != nullptr) {
      if (!std::isfinite(local_stats.first_idle_time)) {
        local_stats.first_idle_time = schedule.makespan();
      }
      *stats = local_stats;
    }
    return schedule;
  }

  // Batched split of the AoS records into flat arrays + packed ready keys
  // for the general loop.
  const soa::TaskSoA soa = [&] {
    const obs::PhaseScope key_scope(metrics, obs::Phase::kKeyBuild);
    return soa::build_task_soa(tasks, arena);
  }();

  // Actual durations as flat arrays for the general loop's clock.
  std::span<const double> act_cpu = soa.cpu;
  std::span<const double> act_gpu = soa.gpu;
  if (!options.actual_times.empty()) {
    double* ac = arena.alloc<double>(actuals.size());
    double* ag = arena.alloc<double>(actuals.size());
    for (std::size_t i = 0; i < actuals.size(); ++i) {
      ac[i] = actuals[i].cpu_time;
      ag[i] = actuals[i].gpu_time;
    }
    act_cpu = {ac, actuals.size()};
    act_gpu = {ag, actuals.size()};
  }

  sim::WorkerPool pool(platform);
  pool.attach_sink(sink);
  sim::EventQueue<EngineEvent> events;
  const std::span<std::uint64_t> generation =
      arena.alloc_zeroed<std::uint64_t>(
          static_cast<std::size_t>(platform.workers()));

  // Per-worker flag: the attempt currently running on the worker will abort
  // at its (already shortened) completion event. Per-task failed-attempt
  // counts drive the retry budget. Both exist only on faulty runs.
  std::span<char> pending_fail;
  std::span<int> failed_attempts;
  if (faulty) {
    pending_fail = arena.alloc_zeroed<char>(
        static_cast<std::size_t>(platform.workers()));
    failed_attempts = arena.alloc_zeroed<int>(tasks.size());
    for (const fault::CrashEvent& c : plan->crashes()) {
      if (c.worker < 0 || c.worker >= platform.workers()) continue;
      events.push(c.time, EngineEvent{EngineEvent::Kind::kCrash, c.worker,
                                      kInvalidTask, 0, 0.0});
    }
    for (const fault::StragglerWindow& win : plan->stragglers()) {
      if (win.worker < 0 || win.worker >= platform.workers()) continue;
      events.push(win.begin,
                  EngineEvent{EngineEvent::Kind::kSlowBegin, win.worker,
                              kInvalidTask, 0, win.slowdown});
      events.push(win.end, EngineEvent{EngineEvent::Kind::kSlowEnd, win.worker,
                                       kInvalidTask, 0, 0.0});
    }
  }

  ReadyQueue queue(soa, arena);
  std::optional<ReadyTracker> tracker;
  if (graph != nullptr) {
    tracker.emplace(*graph);
    const obs::PhaseScope ready_scope(metrics, obs::Phase::kReadyUpdate);
    for (TaskId id : tracker->initially_ready()) {
      queue.insert(id);
      probe.ready(0.0, id);
    }
  } else if (faulty) {
    // Crash re-enqueues and retries re-insert into the ready structure, so
    // the flat presorted form (pop-only) cannot be used; incremental
    // inserts yield the same queue order with O(log n) searches.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      queue.insert(static_cast<TaskId>(i));
      probe.ready(0.0, static_cast<TaskId>(i));
    }
  } else {
    {
      const obs::PhaseScope sort_scope(metrics, obs::Phase::kSort);
      queue.presort_all(tasks.size(), arena);
    }
    if (probe) {
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        probe.ready(0.0, static_cast<TaskId>(i));
      }
    }
  }

  // Incremental per-resource running sets in spoliation-scan order, updated
  // on start/release in O(log W) — replaces collecting and sorting the busy
  // workers of the other type on every spoliation attempt.
  const VictimLess victim_less{victim_order == VictimOrder::kPriority};
  RunningSet running_set[2] = {
      RunningSet(victim_less, static_cast<std::size_t>(platform.cpus()),
                 arena),
      RunningSet(victim_less, static_cast<std::size_t>(platform.gpus()),
                 arena)};
  const std::span<VictimKey> victim_key = arena.alloc_zeroed<VictimKey>(
      static_cast<std::size_t>(platform.workers()));

  std::size_t completed = 0;
  double now = 0.0;

  auto start_task = [&](WorkerId w, TaskId id) {
    const Resource res = platform.type_of(w);
    const auto i = static_cast<std::size_t>(id);
    double dt = res == Resource::kCpu ? act_cpu[i] : act_gpu[i];
    if (faulty) {
      // The injected reality: a pre-drawn failure truncates the attempt's
      // work, and straggler windows stretch wall-clock time around it. The
      // believed VictimKey below still uses the plain estimate — the
      // scheduler never reads the plan.
      const fault::AttemptOutcome outcome =
          plan->attempt_outcome(id, failed_attempts[i]);
      if (outcome.fails) {
        dt *= outcome.fail_fraction;
        pending_fail[static_cast<std::size_t>(w)] = 1;
      }
      dt = plan->finish_time(w, now, dt) - now;
    }
    const double finish = pool.start(w, id, now, dt);
    ++generation[static_cast<std::size_t>(w)];
    events.push(finish,
                EngineEvent{EngineEvent::Kind::kCompletion, w, id,
                            generation[static_cast<std::size_t>(w)], 0.0});
    const VictimKey key{now + soa.time_on(id, res), soa.priority[i], id, w};
    victim_key[static_cast<std::size_t>(w)] = key;
    running_set[static_cast<std::size_t>(res)].insert(key);
    probe.start(now, id, w);
  };

  auto release_worker = [&](WorkerId w) -> sim::Running {
    running_set[static_cast<std::size_t>(platform.type_of(w))].erase(
        victim_key[static_cast<std::size_t>(w)]);
    if (faulty) pending_fail[static_cast<std::size_t>(w)] = 0;
    return pool.release_at(w, now);
  };

  // Attempt a spoliation by idle worker `w`: walk the running set of the
  // other resource type in scan order and steal the first task `w` would
  // finish strictly earlier. Returns true if a task was stolen.
  auto try_spoliate = [&](WorkerId w) -> bool {
    const obs::PhaseScope scan_scope(metrics, obs::Phase::kSpoliationScan);
    ++local_stats.spoliation_attempts;
    probe.spoliate_attempt(now, w);
    const Resource mine = platform.type_of(w);
    const auto& candidates = running_set[static_cast<std::size_t>(other(mine))];
    for (const VictimKey& key : candidates) {
      const double dt = soa.time_on(key.task, mine);
      double believed_finish = key.finish;
      if (faulty && believed_finish <= now) {
        // The victim is overdue — a straggler window stretched it past its
        // believed finish. Re-believe from the estimate as if it restarted
        // now, so a healthy worker can still rescue the task; otherwise
        // "candidate < past instant" never holds and stragglers hold their
        // work hostage forever.
        believed_finish = now + soa.time_on(key.task, other(mine));
      }
      if (!strictly_better(now + dt, believed_finish)) continue;
      // Abort the victim's execution; its progress is lost.
      const WorkerId victim = key.worker;
      const sim::Running aborted = release_worker(victim);
      ++generation[static_cast<std::size_t>(victim)];  // stale its event
      schedule.add_aborted(aborted.task, victim, aborted.start, now);
      ++local_stats.spoliations;
      probe.abort(now, aborted.task, victim);
      probe.spoliate_commit(now, aborted.task, w, victim);
      start_task(w, aborted.task);
      return true;
    }
    return false;
  };

  // Offer work to every idle worker (GPUs first) until a full pass changes
  // nothing. Spoliation can idle a worker of the other type mid-pass, hence
  // the outer repeat.
  std::vector<WorkerId> idle_scratch;
  auto dispatch_idle = [&] {
    bool acted = true;
    while (acted) {
      acted = false;
      pool.idle_workers_gpu_first(idle_scratch);
      for (WorkerId w : idle_scratch) {
        if (pool.busy(w)) continue;  // filled earlier in this pass
        if (!queue.empty()) {
          const TaskId id = platform.type_of(w) == Resource::kGpu
                                ? queue.pop_gpu_end()
                                : queue.pop_cpu_end();
          start_task(w, id);
          acted = true;
        } else {
          local_stats.first_idle_time =
              std::min(local_stats.first_idle_time, now);
          if (!options.enable_spoliation) continue;
          // No victim can exist while the other resource is fully idle;
          // skip the scan outright (the common case once the queue drains).
          if (pool.busy_count(other(platform.type_of(w))) == 0) {
            ++local_stats.spoliation_skips;
            probe.spoliate_skip(now, w);
          } else if (try_spoliate(w)) {
            acted = true;
          }
        }
      }
    }
  };

  // Queue-depth samples bracket every dispatch: the pre-sample captures the
  // peak after a ready burst, the post-sample the steady-state backlog.
  auto dispatch_and_sample = [&] {
    probe.queue_depth(now, queue.size());
    {
      const obs::PhaseScope dispatch_scope(metrics, obs::Phase::kDispatch);
      dispatch_idle();
    }
    probe.queue_depth(now, queue.size());
  };

  // One completed attempt popped from the event queue. On a fault-free run
  // every valid completion places the task; on a faulty run the attempt may
  // instead be an injected failure — the progress is recorded as an aborted
  // segment and the task retried (after the plan's backoff) until its
  // attempt budget runs out.
  auto handle_completion = [&](const EngineEvent& ev) {
    const WorkerId w = ev.worker;
    if (ev.generation != generation[static_cast<std::size_t>(w)]) {
      return;  // stale: the task was spoliated or crashed away
    }
    if (!pool.busy(w)) return;
    const bool attempt_failed =
        faulty && pending_fail[static_cast<std::size_t>(w)] != 0;
    const sim::Running done = release_worker(w);
    if (attempt_failed) {
      schedule.add_aborted(done.task, w, done.start, now);
      const int failures = ++failed_attempts[static_cast<std::size_t>(done.task)];
      ++local_stats.recovery.task_failures;
      probe.task_fail(now, done.task, w, failures - 1);
      if (failures >= plan->max_attempts()) {
        ++local_stats.recovery.tasks_abandoned;
        return;  // budget exhausted: the task stays unfinished
      }
      ++local_stats.recovery.task_retries;
      const double delay = plan->backoff_delay(failures);
      if (delay > 0.0) {
        events.push(now + delay, EngineEvent{EngineEvent::Kind::kRetry, -1,
                                             done.task, 0, 0.0});
      } else {
        probe.task_retry(now, done.task, failures);
        queue.insert(done.task);
        probe.ready(now, done.task);
      }
      return;
    }
    schedule.place(done.task, w, done.start, done.finish);
    ++completed;
    probe.complete(now, done.task, w);
    if (tracker.has_value()) {
      const obs::PhaseScope ready_scope(metrics, obs::Phase::kReadyUpdate);
      for (TaskId released : tracker->complete(done.task)) {
        queue.insert(released);
        probe.ready(now, released);
      }
    }
  };

  // Permanent loss of a worker: abort whatever it runs (re-enqueued with no
  // charge against the task's retry budget — the task did nothing wrong)
  // and remove the worker from the pool, so dispatch and spoliation see
  // only the surviving platform from here on.
  auto handle_crash = [&](WorkerId w) {
    if (pool.failed(w)) return;
    ++local_stats.recovery.worker_crashes;
    if (pool.busy(w)) {
      const sim::Running victim = release_worker(w);
      ++generation[static_cast<std::size_t>(w)];  // stale its completion
      schedule.add_aborted(victim.task, w, victim.start, now);
      probe.abort(now, victim.task, w);
      queue.insert(victim.task);
      probe.ready(now, victim.task);
      ++local_stats.recovery.crash_requeues;
    }
    pool.mark_failed(w);
    probe.worker_crash(now, w);
  };

  dispatch_and_sample();

  while (completed < tasks.size()) {
    if (events.empty()) {
      // Only reachable under faults: every remaining task lost its workers
      // or its retry budget. Fault-free runs always hold an event per
      // incomplete task's worker.
      assert(faulty && "deadlock: no events but tasks incomplete");
      break;
    }
    // Pop the batch of simultaneous valid events. Within a batch, queue
    // order (push sequence) decides: a crash pushed at init pops before a
    // completion at the same instant, so crash-vs-finish ties go to the
    // crash, deterministically.
    const double t = events.top().time;
    now = t;
    while (!events.empty() && events.top().time == t) {
      const auto ev = events.pop();
      switch (ev.payload.kind) {
        case EngineEvent::Kind::kCompletion:
          handle_completion(ev.payload);
          break;
        case EngineEvent::Kind::kCrash:
          handle_crash(ev.payload.worker);
          break;
        case EngineEvent::Kind::kSlowBegin:
          ++local_stats.recovery.straggler_windows;
          probe.worker_slow_begin(now, ev.payload.worker, ev.payload.value);
          break;
        case EngineEvent::Kind::kSlowEnd:
          probe.worker_slow_end(now, ev.payload.worker);
          break;
        case EngineEvent::Kind::kRetry:
          probe.task_retry(
              now, ev.payload.task,
              failed_attempts[static_cast<std::size_t>(ev.payload.task)]);
          queue.insert(ev.payload.task);
          probe.ready(now, ev.payload.task);
          break;
      }
    }
    dispatch_and_sample();
  }

  if (completed < tasks.size()) {
    local_stats.recovery.tasks_unfinished =
        static_cast<int>(tasks.size() - completed);
    local_stats.recovery.degraded = true;
    probe.run_degraded(now, local_stats.recovery.tasks_unfinished);
  }

  if (stats != nullptr) {
    if (!std::isfinite(local_stats.first_idle_time)) {
      local_stats.first_idle_time = schedule.makespan();
    }
    *stats = local_stats;
  }
  return schedule;
}

}  // namespace detail

Schedule heteroprio(std::span<const Task> tasks, const Platform& platform,
                    const HeteroPrioOptions& options, HeteroPrioStats* stats) {
  // threads > 1 routes through the parallel engine (src/par), which owns
  // the fallback decision for cases it does not cover. The layering nod:
  // core normally doesn't reach up into par, but the public entry point
  // lives here and the dependency is one-way at the header level.
  if (options.threads > 1) {
    return par::heteroprio_par_run(tasks, platform, options, stats, nullptr);
  }
  return detail::run_heteroprio(tasks, nullptr, platform, options, stats);
}

}  // namespace hp
