#pragma once
// Reference HeteroPrio engine: the straightforward implementation kept as a
// behavioral oracle for the optimized engine in core/heteroprio.cpp.
//
// This is the pre-optimization code path: the ready set is an ordered
// std::set fed one insert at a time, and every spoliation attempt collects
// and sorts the busy workers of the other resource from scratch. It is
// O(n log n) with much larger constants (and O(W log W) per idle scan), but
// trivially auditable against Algorithm 1 of the paper. The optimized engine
// must produce bitwise-identical schedules; tests/test_hp_regression.cpp
// enforces that, and src/perf/perf_baseline.cpp reports the speedup.

#include <span>

#include "core/heteroprio.hpp"
#include "dag/task_graph.hpp"

namespace hp {

/// Reference HeteroPrio for independent tasks. Same contract as heteroprio().
[[nodiscard]] Schedule heteroprio_reference(std::span<const Task> tasks,
                                            const Platform& platform,
                                            const HeteroPrioOptions& options = {},
                                            HeteroPrioStats* stats = nullptr);

/// Reference HeteroPrio for DAGs. Same contract as heteroprio_dag().
[[nodiscard]] Schedule heteroprio_dag_reference(
    const TaskGraph& graph, const Platform& platform,
    const HeteroPrioOptions& options = {}, HeteroPrioStats* stats = nullptr);

namespace detail {

/// Shared entry point mirroring detail::run_heteroprio.
[[nodiscard]] Schedule run_heteroprio_reference(std::span<const Task> tasks,
                                                const TaskGraph* graph,
                                                const Platform& platform,
                                                const HeteroPrioOptions& options,
                                                HeteroPrioStats* stats);

}  // namespace detail

}  // namespace hp
