#pragma once
// Internal building blocks shared by the batch HeteroPrio engine
// (core/heteroprio.cpp) and the online rolling-horizon runtime
// (online/runtime.cpp): the double-ended ready structure, the spoliation
// victim ordering with its incremental per-resource running sets, and the
// strict-improvement test of Algorithm 1.
//
// This header is library-internal (not part of the public API in
// core/heteroprio.hpp). Both engines must pop tasks, scan victims and
// decide spoliation through the exact same code so that the online
// runtime's correctness anchor holds: all arrivals at t=0 with no faults
// is bitwise-identical to the batch engine.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "model/task.hpp"
#include "model/task_soa.hpp"
#include "util/arena.hpp"
#include "util/key_sort.hpp"

namespace hp::detail {

/// Double-ended ready structure, a flat sorted vector in both modes. The
/// order: the GPU end (front) holds the task an idle GPU takes, the CPU end
/// (back) the task an idle CPU takes. Primary key: acceleration factor,
/// non-increasing. Tie-break (§2.2): for rho >= 1 the highest-priority task
/// comes first; for rho < 1 the highest-priority task comes last, i.e.
/// nearest the CPU end. Final tie: task id (determinism).
///
/// The order is materialized once per task as a packed integer pair
/// (TaskSoA::key0/key1): ascending (key0, key1, id) is exactly the queue
/// order, so the presort is a bucket/radix pass over integers and the
/// incremental inserts (DAG releases, crash re-enqueues, retries, online
/// arrivals) binary-search with branch-light integer compares. The packed
/// compare is proven equivalent to the double comparator in
/// model/task_soa.hpp, so the pop order (and therefore the schedule) is
/// bitwise identical. Inserting a set of tasks one by one in increasing id
/// order produces the same buffer as presorting that set — the property the
/// online runtime's t=0 arrival batch relies on.
class ReadyQueue {
 public:
  ReadyQueue(const soa::TaskSoA& soa, util::Arena& arena)
      : soa_(&soa), buf_(arena) {}

  /// Independent mode: make every task ready and presort once.
  void presort_all(std::size_t n, util::Arena& arena) {
    buf_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      buf_[i] = make_key(static_cast<TaskId>(i));
    }
    util::sort_key2_id(buf_.span(), arena);
    head_ = 0;
  }

  /// Incremental mode: a dependency release (or re-enqueue) made `id` ready.
  void insert(TaskId id) {
    const util::KeyId2 key = make_key(id);
    util::KeyId2* first = buf_.begin() + static_cast<std::ptrdiff_t>(head_);
    util::KeyId2* at = std::lower_bound(first, buf_.end(), key, before);
    if (at == first && head_ > 0) {
      buf_[--head_] = key;  // reuse the space freed by GPU-end pops
    } else {
      buf_.insert(at, key);
    }
  }

  [[nodiscard]] bool empty() const noexcept { return head_ == buf_.size(); }

  [[nodiscard]] std::size_t size() const noexcept {
    return buf_.size() - head_;
  }

  /// Most GPU-friendly ready task (an idle GPU takes this end).
  TaskId pop_gpu_end() { return static_cast<TaskId>(buf_[head_++].id); }

  /// Most CPU-friendly ready task (an idle CPU takes this end).
  TaskId pop_cpu_end() {
    const TaskId id = static_cast<TaskId>(buf_.back().id);
    buf_.pop_back();
    return id;
  }

 private:
  static bool before(const util::KeyId2& a, const util::KeyId2& b) noexcept {
    if (a.k0 != b.k0) return a.k0 < b.k0;
    if (a.k1 != b.k1) return a.k1 < b.k1;
    return a.id < b.id;
  }

  [[nodiscard]] util::KeyId2 make_key(TaskId id) const noexcept {
    const auto i = static_cast<std::size_t>(id);
    return util::KeyId2{soa_->key0[i], soa_->key1[i],
                        static_cast<std::uint32_t>(id)};
  }

  const soa::TaskSoA* soa_;
  util::ArenaVector<util::KeyId2> buf_;  ///< live range: [head_, size())
  std::size_t head_ = 0;
};

/// Cached spoliation-scan key of one running task. `finish` is the believed
/// completion time (start + *estimated* duration), computed once at start
/// instead of re-deriving Platform::time_on per comparison.
struct VictimKey {
  double finish = 0.0;
  double priority = 0.0;
  TaskId task = kInvalidTask;
  WorkerId worker = -1;
};

/// Scan order of Algorithm 1 / §6.2: decreasing believed completion time
/// with priority tie-break (independent), or decreasing priority with
/// completion-time tie-break (DAGs). Final tie: task id, so the order is
/// total and the incremental set reproduces the reference sort exactly.
struct VictimLess {
  bool priority_first = false;

  bool operator()(const VictimKey& a, const VictimKey& b) const noexcept {
    if (priority_first) {
      if (a.priority != b.priority) return a.priority > b.priority;
      if (a.finish != b.finish) return a.finish > b.finish;
    } else {
      if (a.finish != b.finish) return a.finish > b.finish;
      if (a.priority != b.priority) return a.priority > b.priority;
    }
    return a.task < b.task;
  }
};

/// The per-resource running set, ordered by VictimLess. A flat sorted vector
/// rather than a node-based set: the capacity is bounded by the worker count
/// of one resource, so a binary-search insert plus a short memmove is both
/// O(log W) in comparisons and allocation-free — the std::set node churn was
/// measurable at 2 ops per scheduled task.
class RunningSet {
 public:
  RunningSet(VictimLess less, std::size_t max_workers, util::Arena& arena)
      : less_(less), keys_(arena, max_workers) {}

  void insert(const VictimKey& key) {
    keys_.insert(std::lower_bound(keys_.begin(), keys_.end(), key, less_),
                 key);
  }

  void erase(const VictimKey& key) {
    VictimKey* it = std::lower_bound(keys_.begin(), keys_.end(), key, less_);
    assert(it != keys_.end() && it->worker == key.worker);
    keys_.erase(it);
  }

  [[nodiscard]] const VictimKey* begin() const noexcept {
    return keys_.begin();
  }
  [[nodiscard]] const VictimKey* end() const noexcept { return keys_.end(); }

 private:
  VictimLess less_;
  util::ArenaVector<VictimKey> keys_;
};

/// Strict-improvement test with a small relative margin, so that the exact
/// "equal completion time" cases of Theorems 8/11/14 (where spoliation must
/// NOT fire) are not flipped by floating-point noise.
inline bool strictly_better(double candidate_finish,
                            double current_finish) noexcept {
  const double margin = 1e-9 * std::max(1.0, std::abs(current_finish));
  return candidate_finish < current_finish - margin;
}

}  // namespace hp::detail
