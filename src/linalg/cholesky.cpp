#include "linalg/cholesky.hpp"

#include <cassert>

#include "linalg/tile_dag_builder.hpp"

namespace hp {

TaskGraph cholesky_dag(int tiles, const TimingModel& model) {
  assert(tiles >= 1);
  TileDagBuilder builder("cholesky-" + std::to_string(tiles));

  for (int k = 0; k < tiles; ++k) {
    {
      const Tile akk{k, k};
      builder.add(model.make_task(KernelKind::kPotrf), {}, {{akk}});
    }
    for (int i = k + 1; i < tiles; ++i) {
      const Tile akk{k, k};
      const Tile aik{i, k};
      builder.add(model.make_task(KernelKind::kTrsm), {{akk}}, {{aik}});
    }
    for (int i = k + 1; i < tiles; ++i) {
      const Tile aik{i, k};
      const Tile aii{i, i};
      builder.add(model.make_task(KernelKind::kSyrk), {{aik}}, {{aii}});
      for (int j = k + 1; j < i; ++j) {
        const Tile ajk{j, k};
        const Tile aij{i, j};
        builder.add(model.make_task(KernelKind::kGemm), {{aik, ajk}}, {{aij}});
      }
    }
  }
  return builder.take();
}

}  // namespace hp
