#pragma once
// Tiled LU factorization DAG with incremental pivoting (PLASMA-style).
//
// Kernels per step k: DGETRF(k) factors the diagonal tile; DGESSM(k,j)
// applies its pivoting/L to row k; DTSTRF(i,k) folds tile (i,k) into the
// panel (sequential chain, updates (k,k)); DSSSSM(i,j,k) applies each fold
// to the trailing tiles.
//
// Same task-count structure as QR: N GETRF, N(N-1)/2 GESSM, N(N-1)/2 TSTRF,
// N(N-1)(2N-1)/6 SSSSM.

#include "dag/task_graph.hpp"
#include "linalg/kernel_timings.hpp"

namespace hp {

[[nodiscard]] constexpr std::size_t lu_task_count(int tiles) noexcept {
  const auto n = static_cast<std::size_t>(tiles);
  return n + n * (n - 1) / 2 + n * (n - 1) / 2 + (n - 1) * n * (2 * n - 1) / 6;
}

/// Build the DAG for an N-tile LU factorization. Finalized; priorities 0.
[[nodiscard]] TaskGraph lu_dag(int tiles, const TimingModel& model =
                                              TimingModel::chameleon_960());

}  // namespace hp
