#include "linalg/lu.hpp"

#include <cassert>

#include "linalg/tile_dag_builder.hpp"

namespace hp {

TaskGraph lu_dag(int tiles, const TimingModel& model) {
  assert(tiles >= 1);
  TileDagBuilder builder("lu-" + std::to_string(tiles));

  for (int k = 0; k < tiles; ++k) {
    {
      const Tile akk{k, k};
      builder.add(model.make_task(KernelKind::kGetrf), {}, {{akk}});
    }
    for (int j = k + 1; j < tiles; ++j) {
      const Tile akk{k, k};
      const Tile akj{k, j};
      builder.add(model.make_task(KernelKind::kGessm), {{akk}}, {{akj}});
    }
    for (int i = k + 1; i < tiles; ++i) {
      const Tile akk{k, k};
      const Tile aik{i, k};
      builder.add(model.make_task(KernelKind::kTstrf), {}, {{akk, aik}});
      for (int j = k + 1; j < tiles; ++j) {
        const Tile akj{k, j};
        const Tile aij{i, j};
        builder.add(model.make_task(KernelKind::kSsssm), {{aik}}, {{akj, aij}});
      }
    }
  }
  return builder.take();
}

}  // namespace hp
