#include "linalg/fmm.hpp"

#include <cassert>
#include <vector>

namespace hp {

namespace {

/// Cells per level: branching^level.
std::vector<std::size_t> cells_per_level(const FmmParams& params) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(params.depth), 1);
  for (int level = 1; level < params.depth; ++level) {
    counts[static_cast<std::size_t>(level)] =
        counts[static_cast<std::size_t>(level - 1)] *
        static_cast<std::size_t>(params.branching);
  }
  return counts;
}

}  // namespace

std::size_t fmm_task_count(const FmmParams& params) noexcept {
  const auto counts = cells_per_level(params);
  const std::size_t leaves = counts.back();
  std::size_t internal = 0;
  for (int level = 0; level < params.depth - 1; ++level) {
    internal += counts[static_cast<std::size_t>(level)];
  }
  std::size_t transfer_cells = 0;  // levels 2..depth-1 get M2L and a down task
  for (int level = 2; level < params.depth; ++level) {
    transfer_cells += counts[static_cast<std::size_t>(level)];
  }
  // P2M + L2P + P2P per leaf, M2M per internal cell, M2L + L2L per
  // transfer-level cell.
  return 3 * leaves + internal + 2 * transfer_cells;
}

TaskGraph fmm_dag(const FmmParams& params, const TimingModel& model) {
  assert(params.depth >= 3);
  assert(params.branching >= 2);
  const int depth = params.depth;
  const int leaf_level = depth - 1;
  const auto counts = cells_per_level(params);

  TaskGraph graph("fmm-d" + std::to_string(depth) + "-b" +
                  std::to_string(params.branching));

  // upward[level][cell] = P2M (leaves) or M2M (internal) task id.
  std::vector<std::vector<TaskId>> upward(static_cast<std::size_t>(depth));
  for (int level = depth - 1; level >= 0; --level) {
    auto& row = upward[static_cast<std::size_t>(level)];
    row.resize(counts[static_cast<std::size_t>(level)]);
    for (std::size_t cell = 0; cell < row.size(); ++cell) {
      if (level == leaf_level) {
        row[cell] = graph.add_task(model.make_task(KernelKind::kP2M));
      } else {
        row[cell] = graph.add_task(model.make_task(KernelKind::kM2M));
        const auto& children = upward[static_cast<std::size_t>(level + 1)];
        for (int c = 0; c < params.branching; ++c) {
          graph.add_edge(
              children[cell * static_cast<std::size_t>(params.branching) +
                       static_cast<std::size_t>(c)],
              row[cell]);
        }
      }
    }
  }

  // Transfer + downward passes for levels 2..depth-1.
  // down[level][cell]: the L2L task combining the parent's local expansion
  // with the cell's own M2L.
  std::vector<std::vector<TaskId>> m2l(static_cast<std::size_t>(depth));
  std::vector<std::vector<TaskId>> down(static_cast<std::size_t>(depth));
  for (int level = 2; level < depth; ++level) {
    const std::size_t cells = counts[static_cast<std::size_t>(level)];
    auto& m2l_row = m2l[static_cast<std::size_t>(level)];
    auto& down_row = down[static_cast<std::size_t>(level)];
    m2l_row.resize(cells);
    down_row.resize(cells);
    for (std::size_t cell = 0; cell < cells; ++cell) {
      m2l_row[cell] = graph.add_task(model.make_task(KernelKind::kM2L));
      // Interaction list: same-level cells at index distance 1..k around
      // `cell` (a 1-D flattening of the well-separated neighborhood).
      int added = 0;
      for (int offset = 1; added < params.interactions; ++offset) {
        bool any = false;
        const std::size_t off = static_cast<std::size_t>(offset);
        if (cell >= off) {
          graph.add_edge(upward[static_cast<std::size_t>(level)][cell - off],
                         m2l_row[cell]);
          ++added;
          any = true;
        }
        if (added < params.interactions && cell + off < cells) {
          graph.add_edge(upward[static_cast<std::size_t>(level)][cell + off],
                         m2l_row[cell]);
          ++added;
          any = true;
        }
        if (!any) break;  // level too small for more interactions
      }

      down_row[cell] = graph.add_task(model.make_task(KernelKind::kL2L));
      graph.add_edge(m2l_row[cell], down_row[cell]);
      if (level > 2) {
        const std::size_t parent =
            cell / static_cast<std::size_t>(params.branching);
        graph.add_edge(down[static_cast<std::size_t>(level - 1)][parent],
                       down_row[cell]);
      }
    }
  }

  // Leaf finalization: L2P after the leaf's down task; P2P independent.
  const std::size_t leaves = counts.back();
  for (std::size_t cell = 0; cell < leaves; ++cell) {
    const TaskId l2p = graph.add_task(model.make_task(KernelKind::kL2P));
    graph.add_edge(down[static_cast<std::size_t>(leaf_level)][cell], l2p);
  }
  for (std::size_t cell = 0; cell < leaves; ++cell) {
    graph.add_task(model.make_task(KernelKind::kP2P));
  }

  graph.finalize();
  return graph;
}

}  // namespace hp
