#include "linalg/kernel_timings.hpp"

namespace hp {

TimingModel TimingModel::chameleon_960() {
  TimingModel model;
  model.set(KernelKind::kGeneric, {10.0, 1.0});

  // Cholesky, tile 960. CPU times follow the kernels' flop counts
  // (GEMM 2b^3, SYRK/TRSM b^3, POTRF b^3/3) at realistic per-core rates;
  // GPU times are derived from Table 1's acceleration factors.
  model.set(KernelKind::kPotrf, {11.9, 11.9 / 1.72});
  model.set(KernelKind::kTrsm, {27.5, 27.5 / 8.72});
  model.set(KernelKind::kSyrk, {26.0, 26.0 / 26.96});
  model.set(KernelKind::kGemm, {50.0, 50.0 / 28.80});

  // QR (flat tree), tile 960, inner blocking 64. Panel kernels (GEQRT,
  // TSQRT) are memory-bound and barely accelerated; the trailing update
  // TSMQR dominates the work and accelerates well.
  model.set(KernelKind::kGeqrt, {40.0, 40.0 / 2.0});
  model.set(KernelKind::kOrmqr, {55.0, 55.0 / 6.5});
  model.set(KernelKind::kTsqrt, {45.0, 45.0 / 2.8});
  model.set(KernelKind::kTsmqr, {90.0, 90.0 / 12.0});

  // LU with incremental pivoting (PLASMA-style), tile 960.
  model.set(KernelKind::kGetrf, {25.0, 25.0 / 1.9});
  model.set(KernelKind::kGessm, {38.0, 38.0 / 7.0});
  model.set(KernelKind::kTstrf, {35.0, 35.0 / 2.5});
  model.set(KernelKind::kSsssm, {80.0, 80.0 / 13.0});

  // QR binary-reduction-tree kernels: triangle-on-triangle factorization and
  // update. Less work than the TS kernels but similarly memory-bound.
  model.set(KernelKind::kTtqrt, {30.0, 30.0 / 2.2});
  model.set(KernelKind::kTtmqr, {60.0, 60.0 / 9.0});

  // FMM kernels (ScalFMM-like magnitudes): the direct near-field P2P is
  // embarrassingly GPU-friendly; M2L is moderately accelerated; the tree
  // passes (P2M/M2M/L2L/L2P) are small and CPU-competitive.
  model.set(KernelKind::kP2M, {6.0, 6.0 / 1.5});
  model.set(KernelKind::kM2M, {4.0, 4.0 / 1.2});
  model.set(KernelKind::kM2L, {24.0, 24.0 / 5.5});
  model.set(KernelKind::kL2L, {4.0, 4.0 / 1.2});
  model.set(KernelKind::kL2P, {6.0, 6.0 / 1.5});
  model.set(KernelKind::kP2P, {55.0, 55.0 / 22.0});
  return model;
}

}  // namespace hp
