#pragma once
// Kernel timing model — the (p, q) substrate for the paper's workloads.
//
// The paper drives its evaluation with per-kernel processing times measured
// by StarPU/Chameleon on a 20-core Haswell + 4x K40 machine with tile size
// 960. We do not have those traces; this model substitutes calibrated
// values:
//   * Cholesky kernels reproduce Table 1's acceleration factors exactly
//     (DPOTRF 1.72, DTRSM 8.72, DSYRK 26.96, DGEMM 28.80), with CPU-time
//     magnitudes derived from the kernels' flop counts at 960^3 and
//     published per-core DGEMM rates;
//   * QR and LU kernels use the qualitative spread reported for Chameleon
//     (panel factorizations barely accelerated, trailing updates 10-30x).
// What the scheduling algorithms consume is exactly this kind of table, so
// the substitution preserves the decision-relevant structure (see DESIGN.md).

#include <array>

#include "model/task.hpp"
#include "util/rng.hpp"

namespace hp {

/// CPU/GPU processing time of one kernel invocation, milliseconds.
struct KernelTiming {
  double cpu = 1.0;
  double gpu = 1.0;

  [[nodiscard]] double accel() const noexcept { return cpu / gpu; }
};

/// Per-kernel timing table.
class TimingModel {
 public:
  /// Calibrated model for tile size 960 (see file comment).
  [[nodiscard]] static TimingModel chameleon_960();

  [[nodiscard]] KernelTiming timing(KernelKind kind) const noexcept {
    return table_[static_cast<std::size_t>(kind)];
  }
  void set(KernelKind kind, KernelTiming timing) noexcept {
    table_[static_cast<std::size_t>(kind)] = timing;
  }

  [[nodiscard]] double accel(KernelKind kind) const noexcept {
    return timing(kind).accel();
  }

  /// Build a Task for one invocation of `kind`.
  [[nodiscard]] Task make_task(KernelKind kind) const noexcept {
    const KernelTiming t = timing(kind);
    return Task{t.cpu, t.gpu, 0.0, kind};
  }

  /// Build a Task with multiplicative lognormal noise of parameter `sigma`
  /// applied independently to both times (models measurement dispersion).
  [[nodiscard]] Task make_task_noisy(KernelKind kind, double sigma,
                                     util::Rng& rng) const noexcept {
    Task t = make_task(kind);
    t.cpu_time *= rng.lognormal(0.0, sigma);
    t.gpu_time *= rng.lognormal(0.0, sigma);
    return t;
  }

 private:
  std::array<KernelTiming, kNumKernelKinds> table_{};
};

}  // namespace hp
