#pragma once
// Fast Multipole Method task graph — the workload HeteroPrio was originally
// designed for (§1: "proposed in the context of fast multipole
// computations", in ScalFMM on StarPU).
//
// We model a uniform tree of configurable depth and branching factor with
// the classic FMM phases:
//   upward   — P2M per leaf, M2M per internal cell (children -> parent);
//   transfer — M2L per cell below level 2, fed by the upward tasks of the
//              cells in its interaction list (well-separated same-level
//              cells; modeled by index distance with a configurable list
//              size);
//   downward — L2L per cell (parent -> children, joined with the cell's own
//              M2L), L2P per leaf;
//   direct   — P2P per leaf (near field), independent of the tree passes.
//
// The affinity structure is what matters for the scheduler: P2P is
// massively GPU-friendly, M2L moderately, the tree passes are small and
// CPU-competitive (see TimingModel::chameleon_960).

#include <cstddef>

#include "dag/task_graph.hpp"
#include "linalg/kernel_timings.hpp"

namespace hp {

struct FmmParams {
  int depth = 4;      ///< tree levels 0..depth-1; leaves at depth-1; >= 3
  int branching = 8;  ///< children per cell (8 = octree, 4 = quadtree)
  /// Interaction-list size per cell (number of same-level M2L sources,
  /// capped by the cells available at that level).
  int interactions = 12;
};

/// Number of tasks fmm_dag(params) will generate.
[[nodiscard]] std::size_t fmm_task_count(const FmmParams& params) noexcept;

/// Build the FMM DAG. Finalized; priorities 0.
[[nodiscard]] TaskGraph fmm_dag(const FmmParams& params,
                                const TimingModel& model =
                                    TimingModel::chameleon_960());

}  // namespace hp
