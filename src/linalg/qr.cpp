#include "linalg/qr.hpp"

#include <cassert>

#include "linalg/tile_dag_builder.hpp"

namespace hp {

TaskGraph qr_dag(int tiles, const TimingModel& model) {
  assert(tiles >= 1);
  TileDagBuilder builder("qr-" + std::to_string(tiles));

  for (int k = 0; k < tiles; ++k) {
    {
      const Tile akk{k, k};
      builder.add(model.make_task(KernelKind::kGeqrt), {}, {{akk}});
    }
    for (int j = k + 1; j < tiles; ++j) {
      const Tile akk{k, k};
      const Tile akj{k, j};
      builder.add(model.make_task(KernelKind::kOrmqr), {{akk}}, {{akj}});
    }
    for (int i = k + 1; i < tiles; ++i) {
      // TSQRT folds tile (i,k) into the panel; updates both (k,k) and (i,k),
      // which serializes the chain down the column.
      const Tile akk{k, k};
      const Tile aik{i, k};
      builder.add(model.make_task(KernelKind::kTsqrt), {}, {{akk, aik}});
      for (int j = k + 1; j < tiles; ++j) {
        const Tile akj{k, j};
        const Tile aij{i, j};
        builder.add(model.make_task(KernelKind::kTsmqr), {{aik}}, {{akj, aij}});
      }
    }
  }
  return builder.take();
}

std::size_t qr_binary_task_count(int tiles) noexcept {
  std::size_t count = 0;
  for (int k = 0; k < tiles; ++k) {
    const int rows = tiles - k;
    const int cols = tiles - 1 - k;
    count += static_cast<std::size_t>(rows) * (1 + static_cast<std::size_t>(cols));
    // Binary-tree merges: rows-1 TTQRT, each with `cols` TTMQR updates.
    count += static_cast<std::size_t>(rows - 1) *
             (1 + static_cast<std::size_t>(cols));
  }
  return count;
}

TaskGraph qr_binary_dag(int tiles, const TimingModel& model) {
  assert(tiles >= 1);
  TileDagBuilder builder("qr-tt-" + std::to_string(tiles));

  for (int k = 0; k < tiles; ++k) {
    // Independent panel factorizations, one per tile row.
    for (int i = k; i < tiles; ++i) {
      const Tile aik{i, k};
      builder.add(model.make_task(KernelKind::kGeqrt), {}, {{aik}});
      for (int j = k + 1; j < tiles; ++j) {
        const Tile aij{i, j};
        builder.add(model.make_task(KernelKind::kOrmqr), {{aik}}, {{aij}});
      }
    }
    // Binary-tree merge of the triangular factors: at distance d, row i
    // absorbs row i+d (both triangular), with TTMQR updating both rows'
    // trailing tiles.
    for (int dist = 1; k + dist < tiles; dist *= 2) {
      for (int i = k; i + dist < tiles; i += 2 * dist) {
        const int partner = i + dist;
        const Tile aik{i, k};
        const Tile apk{partner, k};
        builder.add(model.make_task(KernelKind::kTtqrt), {}, {{aik, apk}});
        for (int j = k + 1; j < tiles; ++j) {
          const Tile aij{i, j};
          const Tile apj{partner, j};
          builder.add(model.make_task(KernelKind::kTtmqr), {{apk}},
                      {{aij, apj}});
        }
      }
    }
  }
  return builder.take();
}

}  // namespace hp
