#include "linalg/tile_dag_builder.hpp"

namespace hp {

TaskId TileDagBuilder::add(Task task, std::span<const Tile> reads,
                           std::span<const Tile> writes) {
  const TaskId id = graph_.add_task(task);
  for (const Tile tile : reads) {
    TileState& state = tiles_[key(tile)];
    if (state.last_writer != kInvalidTask) {
      graph_.add_edge(state.last_writer, id);
    }
    state.readers_since_write.push_back(id);
  }
  for (const Tile tile : writes) {
    TileState& state = tiles_[key(tile)];
    if (state.last_writer != kInvalidTask) {
      graph_.add_edge(state.last_writer, id);
    }
    for (const TaskId reader : state.readers_since_write) {
      if (reader != id) graph_.add_edge(reader, id);
    }
    state.last_writer = id;
    state.readers_since_write.clear();
  }
  return id;
}

TaskGraph TileDagBuilder::take() {
  graph_.finalize();
  return std::move(graph_);
}

}  // namespace hp
