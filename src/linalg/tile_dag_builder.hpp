#pragma once
// Dataflow DAG construction over a tiled matrix.
//
// The tiled factorization generators declare, for every kernel call, which
// tiles it reads and which it writes. Dependencies are inferred the way a
// sequential-task-flow runtime (StarPU, QUARK, PaRSEC's DTD) does:
//   read  -> edge from the tile's last writer (RAW);
//   write -> edges from the tile's last writer (WAW) and from every reader
//            since that write (WAR).

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "dag/task_graph.hpp"
#include "linalg/kernel_timings.hpp"

namespace hp {

/// Tile coordinate in the matrix (block row, block column).
struct Tile {
  int i = 0;
  int j = 0;
};

class TileDagBuilder {
 public:
  explicit TileDagBuilder(std::string name) : graph_(std::move(name)) {}

  /// Add one kernel call. Tiles in `reads` are read, tiles in `writes` are
  /// read+written (all these kernels update in place). Returns the task id.
  TaskId add(Task task, std::span<const Tile> reads,
             std::span<const Tile> writes);

  /// Finalize and take the graph.
  [[nodiscard]] TaskGraph take();

 private:
  struct TileState {
    TaskId last_writer = kInvalidTask;
    std::vector<TaskId> readers_since_write;
  };

  static std::uint64_t key(Tile t) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.i)) << 32) |
           static_cast<std::uint32_t>(t.j);
  }

  TaskGraph graph_;
  std::unordered_map<std::uint64_t, TileState> tiles_;
};

}  // namespace hp
