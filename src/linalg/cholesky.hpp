#pragma once
// Tiled Cholesky factorization DAG (right-looking, lower triangular).
//
// Kernels per elimination step k: DPOTRF(k), DTRSM(i,k) for i>k, and the
// trailing update DSYRK(i,k) / DGEMM(i,j,k) for i>j>k — the workload of the
// paper's Table 1 and of the Cholesky panels of Figs 6-9.
//
// Task counts for N tiles: N POTRF, N(N-1)/2 TRSM, N(N-1)/2 SYRK,
// N(N-1)(N-2)/6 GEMM.

#include "dag/task_graph.hpp"
#include "linalg/kernel_timings.hpp"

namespace hp {

/// Number of tasks of the N-tile Cholesky DAG.
[[nodiscard]] constexpr std::size_t cholesky_task_count(int tiles) noexcept {
  const auto n = static_cast<std::size_t>(tiles);
  return n + n * (n - 1) / 2 + n * (n - 1) / 2 + n * (n - 1) * (n - 2) / 6;
}

/// Build the DAG for an N-tile Cholesky factorization. The graph is
/// finalized; priorities are left at 0 (use assign_priorities).
[[nodiscard]] TaskGraph cholesky_dag(int tiles,
                                     const TimingModel& model =
                                         TimingModel::chameleon_960());

}  // namespace hp
