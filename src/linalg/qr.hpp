#pragma once
// Tiled QR factorization DAG (flat reduction tree, PLASMA/Chameleon style).
//
// Kernels per step k: DGEQRT(k) factors the diagonal tile; DORMQR(k,j)
// applies it to row k; DTSQRT(i,k) incrementally folds tile (i,k) into the
// panel (a sequential chain down the column); DTSMQR(i,j,k) applies each
// fold to the trailing tiles of rows k and i.
//
// Task counts for N tiles: N GEQRT, N(N-1)/2 ORMQR, N(N-1)/2 TSQRT,
// N(N-1)(2N-1)/6 TSMQR.

#include "dag/task_graph.hpp"
#include "linalg/kernel_timings.hpp"

namespace hp {

[[nodiscard]] constexpr std::size_t qr_task_count(int tiles) noexcept {
  const auto n = static_cast<std::size_t>(tiles);
  return n + n * (n - 1) / 2 + n * (n - 1) / 2 + (n - 1) * n * (2 * n - 1) / 6;
}

/// Build the DAG for an N-tile QR factorization. Finalized; priorities 0.
[[nodiscard]] TaskGraph qr_dag(int tiles, const TimingModel& model =
                                              TimingModel::chameleon_960());

/// Binary-reduction-tree variant (PLASMA's TT kernels): every tile of the
/// panel is factored independently (GEQRT + ORMQR row updates), then pairs
/// of rows are merged by DTTQRT/DTTMQR along a binary tree. Shorter critical
/// path and far more parallelism in the panel than the flat TS chain —
/// a different DAG shape to stress the schedulers with.
[[nodiscard]] TaskGraph qr_binary_dag(int tiles,
                                      const TimingModel& model =
                                          TimingModel::chameleon_960());

/// Number of tasks of qr_binary_dag(tiles).
[[nodiscard]] std::size_t qr_binary_task_count(int tiles) noexcept;

}  // namespace hp
