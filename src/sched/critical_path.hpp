#pragma once
// Critical-path attribution over an *executed* schedule.
//
// Bottom-level ranks (dag/ranking.hpp) reason about the critical path of the
// input DAG; this module answers the engine-tuning question instead: in the
// schedule a policy actually produced, which chain of task executions and
// waits explains the makespan? Starting from the placement that ends last,
// each segment's start is attributed to the latest-finishing "explainer":
// a dependency predecessor that released the task, or the previous occupant
// of the same worker (including partial executions killed by spoliation).
// Gaps that no segment explains are charged as idle. The result is a chain
// of segments covering [0, makespan] whose composition (compute per kernel
// kind, dependency waits, worker-busy waits, idle) tells you what to tune:
// a dependency-dominated chain needs better priorities, a worker-dominated
// chain needs more resources or spoliation, an idle-heavy chain means the
// ready queue ran dry.

#include <span>
#include <string>
#include <vector>

#include "dag/task_graph.hpp"
#include "model/platform.hpp"
#include "model/task.hpp"
#include "obs/counters.hpp"
#include "sched/schedule.hpp"

namespace hp {

/// How a chain segment enables the segment after it (its successor in time).
enum class CpLink {
  kMakespan,    ///< last segment of the chain; defines the makespan
  kDependency,  ///< successor waited for this task's completion (DAG edge)
  kWorker,      ///< successor waited for this worker to become free
};

[[nodiscard]] const char* cp_link_name(CpLink link) noexcept;

/// One segment of the critical chain, in execution order. Idle segments
/// (task == kInvalidTask) are uncovered gaps attributed to no task.
struct CpSegment {
  TaskId task = kInvalidTask;
  WorkerId worker = -1;
  double begin = 0.0;
  double end = 0.0;
  bool aborted = false;        ///< spoliated partial execution on the chain
  CpLink link = CpLink::kMakespan;

  [[nodiscard]] double span() const noexcept { return end - begin; }
  [[nodiscard]] bool is_idle() const noexcept { return task == kInvalidTask; }
};

struct CriticalPathReport {
  double makespan = 0.0;
  /// Chain segments ordered by begin time; spans tile [first.begin, makespan]
  /// without overlap. Empty iff the schedule placed nothing.
  std::vector<CpSegment> segments;

  // Aggregates over `segments`.
  double compute_time = 0.0;  ///< sum of non-idle spans
  double idle_time = 0.0;     ///< sum of idle spans
  double compute_by_kind[kNumKernelKinds] = {};
  std::size_t dependency_links = 0;  ///< segments that released a successor
  std::size_t worker_links = 0;      ///< segments that freed the worker
  std::size_t aborted_segments = 0;  ///< spoliated partials on the chain

  /// Fraction of the makespan attributed to task execution (1.0 = the chain
  /// is pure compute; low values mean waits/idle dominate).
  [[nodiscard]] double compute_fraction() const noexcept {
    return makespan > 0.0 ? compute_time / makespan : 0.0;
  }
};

/// Build the critical chain of `schedule`. `graph` supplies dependency
/// edges; pass nullptr for independent-task schedules (only worker-busy and
/// idle attribution apply). Tasks without a placement are skipped. O((n + e)
/// + n log n) in tasks and edges.
[[nodiscard]] CriticalPathReport build_critical_path(
    const Schedule& schedule, std::span<const Task> tasks,
    const Platform& platform, const TaskGraph* graph = nullptr);

/// Multi-line human rendering for `hp_sched report --critical-path`:
/// composition summary plus the longest chain segments.
[[nodiscard]] std::string describe(const CriticalPathReport& report,
                                   std::span<const Task> tasks,
                                   const Platform& platform,
                                   std::size_t max_segments = 12);

/// Surface the report's aggregates as "cp_*" counters in `registry`, next
/// to the scheduler counters the obs stream already carries.
void add_to_registry(const CriticalPathReport& report,
                     obs::CounterRegistry& registry);

}  // namespace hp
