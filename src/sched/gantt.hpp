#pragma once
// ASCII Gantt chart of a schedule (quickstart/example output; reproduces the
// shape of the paper's Figs 1, 2 and 5 in a terminal).

#include <span>
#include <string>

#include "model/platform.hpp"
#include "sched/schedule.hpp"

namespace hp {

struct GanttOptions {
  int width = 100;          ///< characters of the time axis
  bool show_aborted = true; ///< render spoliation-aborted segments (as '.')
};

/// Render one row per worker. Each task is drawn with a letter cycling
/// through a-z/A-Z by task id; aborted segments are drawn with '.'.
[[nodiscard]] std::string render_gantt(const Schedule& schedule,
                                       const Platform& platform,
                                       const GanttOptions& options = {});

}  // namespace hp
