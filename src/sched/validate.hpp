#pragma once
// Schedule validity checking.
//
// Every scheduler's output is checked in tests against three properties:
//   1. completeness — every task is placed exactly once;
//   2. durations — each placement's length equals the task's time on the
//      worker's resource type (aborted segments must be strictly shorter);
//   3. exclusivity — segments on one worker (final + aborted) do not overlap;
//   4. precedence (DAG inputs) — a task starts no earlier than every
//      predecessor's completion.

#include <span>
#include <string>

#include "dag/task_graph.hpp"
#include "model/instance.hpp"
#include "model/platform.hpp"
#include "sched/schedule.hpp"

namespace hp {

struct ScheduleCheck {
  bool ok = true;
  std::string message;  ///< first violation found, empty when ok
};

/// Relaxations for schedules produced under fault injection.
struct ScheduleCheckOptions {
  double tol = 1e-9;
  /// Allow unplaced tasks (a degraded run abandoned them). Exclusivity and
  /// precedence still apply to everything that did run — and a *placed*
  /// successor of an unplaced predecessor is always a violation.
  bool require_complete = true;
  /// Require each placement's length to equal Platform::time_on (and each
  /// aborted segment to be no longer). Disable for runs whose wall-clock
  /// durations were stretched by straggler windows; segments must still be
  /// non-negative and non-overlapping.
  bool exact_durations = true;
};

/// Validate a schedule of an independent-task instance.
[[nodiscard]] ScheduleCheck check_schedule(const Schedule& schedule,
                                           std::span<const Task> tasks,
                                           const Platform& platform,
                                           double tol = 1e-9);
[[nodiscard]] ScheduleCheck check_schedule(const Schedule& schedule,
                                           std::span<const Task> tasks,
                                           const Platform& platform,
                                           const ScheduleCheckOptions& options);

/// Validate a schedule of a DAG (all independent-instance checks plus
/// precedence).
[[nodiscard]] ScheduleCheck check_schedule(const Schedule& schedule,
                                           const TaskGraph& graph,
                                           const Platform& platform,
                                           double tol = 1e-9);
[[nodiscard]] ScheduleCheck check_schedule(const Schedule& schedule,
                                           const TaskGraph& graph,
                                           const Platform& platform,
                                           const ScheduleCheckOptions& options);

}  // namespace hp
