#include "sched/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/table.hpp"

namespace hp {

namespace {
char task_letter(TaskId id) {
  // 62 letters + digits, with the alphabet rotated by one on each wrap
  // (index = id + id/62): consecutive ids always differ, and so do ids a
  // plain modulus would alias (id and id+62 land one position apart). Only
  // ids 62*63 = 3906 apart repeat a glyph.
  constexpr const char* kAlphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  const auto i = static_cast<std::size_t>(id);
  return kAlphabet[(i + i / 62) % 62];
}
}  // namespace

std::string render_gantt(const Schedule& schedule, const Platform& platform,
                         const GanttOptions& options) {
  const double makespan = schedule.makespan();
  if (makespan <= 0.0) return "(empty schedule)\n";
  const int width = std::max(10, options.width);
  const double scale = width / makespan;

  std::vector<std::string> rows(static_cast<std::size_t>(platform.workers()),
                                std::string(static_cast<std::size_t>(width), ' '));

  auto paint = [&](WorkerId w, double start, double end, char ch) {
    auto lo = static_cast<int>(start * scale);
    auto hi = static_cast<int>(end * scale);
    lo = std::clamp(lo, 0, width - 1);
    hi = std::clamp(hi, lo + 1, width);
    for (int c = lo; c < hi; ++c) rows[static_cast<std::size_t>(w)][static_cast<std::size_t>(c)] = ch;
  };

  if (options.show_aborted) {
    for (const AbortedSegment& a : schedule.aborted()) {
      paint(a.worker, a.start, a.abort_time, '.');
    }
  }
  for (std::size_t i = 0; i < schedule.num_tasks(); ++i) {
    const Placement& p = schedule.placement(static_cast<TaskId>(i));
    if (p.placed()) paint(p.worker, p.start, p.end, task_letter(static_cast<TaskId>(i)));
  }

  std::ostringstream oss;
  oss << "makespan = " << util::format_double(makespan, 4) << '\n';
  for (WorkerId w = 0; w < platform.workers(); ++w) {
    oss << resource_name(platform.type_of(w)) << '#' << w << '\t' << '|'
        << rows[static_cast<std::size_t>(w)] << "|\n";
  }
  return oss.str();
}

}  // namespace hp
