#include "sched/export.hpp"

#include <sstream>

#include "util/table.hpp"

namespace hp {

namespace {

const char* kind_fill(KernelKind kind) {
  switch (kind) {
    case KernelKind::kPotrf:
    case KernelKind::kGeqrt:
    case KernelKind::kGetrf: return "#e45756";
    case KernelKind::kTrsm:
    case KernelKind::kOrmqr:
    case KernelKind::kGessm: return "#f2a93b";
    case KernelKind::kSyrk:
    case KernelKind::kTsqrt:
    case KernelKind::kTstrf:
    case KernelKind::kTtqrt: return "#4c78a8";
    case KernelKind::kGemm:
    case KernelKind::kTsmqr:
    case KernelKind::kSsssm:
    case KernelKind::kTtmqr: return "#59a14f";
    case KernelKind::kP2P: return "#59a14f";
    case KernelKind::kM2L: return "#4c78a8";
    case KernelKind::kP2M:
    case KernelKind::kM2M:
    case KernelKind::kL2L:
    case KernelKind::kL2P: return "#f2a93b";
    case KernelKind::kGeneric: return "#9d9d9d";
  }
  return "#9d9d9d";
}

}  // namespace

std::string to_chrome_trace(const Schedule& schedule,
                            std::span<const Task> tasks,
                            const Platform& platform) {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const char* name, WorkerId worker, double start,
                  double duration, bool aborted) {
    if (!first) oss << ',';
    first = false;
    oss << "{\"name\":\"" << name << (aborted ? " (aborted)" : "")
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << worker
        << ",\"ts\":" << util::format_double(start * 1000.0, 3)
        << ",\"dur\":" << util::format_double(duration * 1000.0, 3)
        << ",\"cat\":\"" << (aborted ? "aborted" : "task") << "\"}";
  };

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Placement& p = schedule.placement(static_cast<TaskId>(i));
    if (!p.placed()) continue;
    emit(kernel_name(tasks[i].kind), p.worker, p.start, p.end - p.start, false);
  }
  for (const AbortedSegment& a : schedule.aborted()) {
    emit(kernel_name(tasks[static_cast<std::size_t>(a.task)].kind), a.worker,
         a.start, a.abort_time - a.start, true);
  }
  // Lane metadata: name each worker thread.
  for (WorkerId w = 0; w < platform.workers(); ++w) {
    oss << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << w
        << ",\"args\":{\"name\":\"" << resource_name(platform.type_of(w)) << ' '
        << w << "\"}}";
  }
  oss << "]}";
  return oss.str();
}

std::string to_svg_gantt(const Schedule& schedule, std::span<const Task> tasks,
                         const Platform& platform, const SvgOptions& options) {
  const double makespan = schedule.makespan();
  const int gutter = 70;
  const int height = platform.workers() * options.row_height + 30;
  const double scale = makespan > 0.0 ? options.width / makespan : 1.0;

  std::ostringstream oss;
  oss << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << gutter + options.width + 10 << "\" height=\"" << height
      << "\" font-family=\"sans-serif\" font-size=\"11\">\n";

  for (WorkerId w = 0; w < platform.workers(); ++w) {
    const int y = 10 + w * options.row_height;
    oss << "<text x=\"4\" y=\"" << y + options.row_height / 2 + 4 << "\">"
        << resource_name(platform.type_of(w)) << w << "</text>\n"
        << "<line x1=\"" << gutter << "\" y1=\"" << y + options.row_height
        << "\" x2=\"" << gutter + options.width << "\" y2=\""
        << y + options.row_height << "\" stroke=\"#ddd\"/>\n";
  }

  auto rect = [&](WorkerId w, double start, double end, const char* fill,
                  double opacity, const char* title) {
    const int y = 10 + w * options.row_height;
    oss << "<rect x=\"" << util::format_double(gutter + start * scale, 2)
        << "\" y=\"" << y + 2 << "\" width=\""
        << util::format_double(std::max(0.5, (end - start) * scale), 2)
        << "\" height=\"" << options.row_height - 4 << "\" fill=\"" << fill
        << "\" fill-opacity=\"" << opacity
        << "\" stroke=\"#333\" stroke-width=\"0.3\"><title>" << title
        << "</title></rect>\n";
  };

  if (options.show_aborted) {
    for (const AbortedSegment& a : schedule.aborted()) {
      rect(a.worker, a.start, a.abort_time, "#bbbbbb", 0.6,
           "aborted by spoliation");
    }
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Placement& p = schedule.placement(static_cast<TaskId>(i));
    if (!p.placed()) continue;
    rect(p.worker, p.start, p.end, kind_fill(tasks[i].kind), 1.0,
         kernel_name(tasks[i].kind));
  }
  oss << "<text x=\"" << gutter << "\" y=\"" << height - 6
      << "\">makespan = " << util::format_double(makespan, 3) << "</text>\n"
      << "</svg>\n";
  return oss.str();
}

}  // namespace hp
