#include "sched/schedule.hpp"

#include <algorithm>

namespace hp {

bool Schedule::complete() const noexcept {
  return std::all_of(placements_.begin(), placements_.end(),
                     [](const Placement& p) { return p.placed(); });
}

double Schedule::makespan() const noexcept {
  double end = 0.0;
  for (const Placement& p : placements_) {
    if (p.placed()) end = std::max(end, p.end);
  }
  for (const AbortedSegment& a : aborted_) end = std::max(end, a.abort_time);
  return end;
}

}  // namespace hp
