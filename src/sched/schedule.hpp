#pragma once
// Schedule artifact produced by every scheduler in this library.
//
// A Schedule maps each task to a (worker, start, end) placement and records
// the aborted attempts caused by spoliation (§2.1: when a task is spoliated,
// the progress made on the slow resource is lost; the partial execution is
// kept here so that validity checking and the idle-time accounting of §6.2
// can see it).

#include <span>
#include <vector>

#include "model/platform.hpp"
#include "model/task.hpp"

namespace hp {

/// Final placement of a task.
struct Placement {
  WorkerId worker = -1;
  double start = 0.0;
  double end = 0.0;

  [[nodiscard]] bool placed() const noexcept { return worker >= 0; }
};

/// A partial execution killed by spoliation.
struct AbortedSegment {
  TaskId task = kInvalidTask;
  WorkerId worker = -1;
  double start = 0.0;
  double abort_time = 0.0;
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t num_tasks) : placements_(num_tasks) {}

  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return placements_.size();
  }

  /// Record the final placement of `task`. Overwrites any previous one.
  void place(TaskId task, WorkerId worker, double start, double end) {
    placements_[static_cast<std::size_t>(task)] = Placement{worker, start, end};
  }

  /// Record a partial execution of `task` aborted at `abort_time`.
  void add_aborted(TaskId task, WorkerId worker, double start,
                   double abort_time) {
    aborted_.push_back(AbortedSegment{task, worker, start, abort_time});
  }

  [[nodiscard]] const Placement& placement(TaskId task) const noexcept {
    return placements_[static_cast<std::size_t>(task)];
  }

  [[nodiscard]] std::span<const Placement> placements() const noexcept {
    return placements_;
  }
  [[nodiscard]] std::span<const AbortedSegment> aborted() const noexcept {
    return aborted_;
  }

  /// True iff every task has a placement.
  [[nodiscard]] bool complete() const noexcept;

  /// Latest end over all placements (and aborted segments).
  [[nodiscard]] double makespan() const noexcept;

  /// Number of spoliated (re-executed) tasks.
  [[nodiscard]] std::size_t spoliation_count() const noexcept {
    return aborted_.size();
  }

 private:
  std::vector<Placement> placements_;
  std::vector<AbortedSegment> aborted_;
};

}  // namespace hp
