#pragma once
// Execute a planned schedule under (possibly different) actual durations.
//
// A static scheduler (HEFT, DualHP) plans with estimated task times. At
// execution time, a runtime keeps the plan's worker assignment and
// per-worker task order, but each task starts only when its worker is free
// and its predecessors have completed, and runs for its *actual* time.
// This is how the noise-robustness experiments replay static plans.

#include <span>

#include "dag/task_graph.hpp"
#include "model/platform.hpp"
#include "sched/schedule.hpp"

namespace hp {

/// Replay `plan`'s assignment with `actual_times` (parallel to
/// graph.tasks()). Pass an empty span to reuse the graph's own times.
/// Returns the realized schedule. The plan must place every task.
[[nodiscard]] Schedule execute_static_plan(const Schedule& plan,
                                           const TaskGraph& graph,
                                           const Platform& platform,
                                           std::span<const Task> actual_times = {});

}  // namespace hp
