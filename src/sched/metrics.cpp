#include "sched/metrics.hpp"

#include <limits>

namespace hp {

ScheduleMetrics compute_metrics(const Schedule& schedule,
                                std::span<const Task> tasks,
                                const Platform& platform) {
  ScheduleMetrics m;
  m.makespan = schedule.makespan();

  double cpu_p = 0.0, cpu_q = 0.0, gpu_p = 0.0, gpu_q = 0.0;

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Placement& p = schedule.placement(static_cast<TaskId>(i));
    if (!p.placed()) continue;
    const Resource r = platform.type_of(p.worker);
    ResourceMetrics& rm = r == Resource::kCpu ? m.cpu : m.gpu;
    rm.busy_time += p.end - p.start;
    ++rm.tasks_completed;
    if (r == Resource::kCpu) {
      cpu_p += tasks[i].cpu_time;
      cpu_q += tasks[i].gpu_time;
    } else {
      gpu_p += tasks[i].cpu_time;
      gpu_q += tasks[i].gpu_time;
    }
  }
  for (const AbortedSegment& a : schedule.aborted()) {
    const Resource r = platform.type_of(a.worker);
    ResourceMetrics& rm = r == Resource::kCpu ? m.cpu : m.gpu;
    rm.aborted_time += a.abort_time - a.start;
    ++rm.attempts_aborted;
  }

  m.cpu.idle_time = platform.cpus() * m.makespan - m.cpu.busy_time;
  m.gpu.idle_time = platform.gpus() * m.makespan - m.gpu.busy_time;

  m.cpu.equivalent_accel =
      cpu_q > 0.0 ? cpu_p / cpu_q : std::numeric_limits<double>::quiet_NaN();
  m.gpu.equivalent_accel =
      gpu_q > 0.0 ? gpu_p / gpu_q : std::numeric_limits<double>::quiet_NaN();

  // The schedule-derivable subset of the observability counters; event-level
  // ones (attempts, skips, queue depth) need a live sink and stay 0 here.
  obs::SchedulerCounters& c = m.counters;
  c.tasks_ready = c.tasks_completed =
      m.cpu.tasks_completed + m.gpu.tasks_completed;
  c.aborts = static_cast<long long>(schedule.aborted().size());
  c.spoliation_commits = static_cast<long long>(schedule.spoliation_count());
  c.makespan = m.makespan;
  for (const Resource r : {Resource::kCpu, Resource::kGpu}) {
    const auto idx = static_cast<std::size_t>(r);
    c.busy_time[idx] = m.of(r).busy_time;
    c.aborted_time[idx] = m.of(r).aborted_time;
    const double capacity = platform.count(r) * m.makespan;
    c.idle_fraction[idx] = capacity > 0.0 ? m.of(r).idle_time / capacity : 0.0;
  }
  return m;
}

double normalized_idle(const ScheduleMetrics& metrics, Resource r,
                       const Platform& platform, double lower_bound) noexcept {
  const double capacity = platform.count(r) * lower_bound;
  if (capacity <= 0.0) return 0.0;
  return metrics.of(r).idle_time / capacity;
}

}  // namespace hp
