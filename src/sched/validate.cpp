#include "sched/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace hp {

namespace {

struct Segment {
  double start;
  double end;
  TaskId task;
};

std::string fail(const std::ostringstream& oss) { return oss.str(); }

ScheduleCheck check_core(const Schedule& schedule, std::span<const Task> tasks,
                         const Platform& platform,
                         const ScheduleCheckOptions& options) {
  const double tol = options.tol;
  std::ostringstream oss;
  if (schedule.num_tasks() != tasks.size()) {
    oss << "schedule covers " << schedule.num_tasks() << " tasks, instance has "
        << tasks.size();
    return {false, fail(oss)};
  }

  std::vector<std::vector<Segment>> by_worker(
      static_cast<std::size_t>(platform.workers()));

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    const Placement& p = schedule.placement(id);
    if (!p.placed()) {
      if (!options.require_complete) continue;
      oss << "task " << id << " not placed";
      return {false, fail(oss)};
    }
    if (p.worker < 0 || p.worker >= platform.workers()) {
      oss << "task " << id << " on invalid worker " << p.worker;
      return {false, fail(oss)};
    }
    if (options.exact_durations) {
      const double expected =
          Platform::time_on(tasks[i], platform.type_of(p.worker));
      if (std::abs((p.end - p.start) - expected) > tol) {
        oss << "task " << id << " duration " << (p.end - p.start) << " != "
            << expected << " on " << resource_name(platform.type_of(p.worker));
        return {false, fail(oss)};
      }
    } else if (p.end < p.start - tol) {
      oss << "task " << id << " ends at " << p.end << " before its start "
          << p.start;
      return {false, fail(oss)};
    }
    if (p.start < -tol) {
      oss << "task " << id << " starts before 0";
      return {false, fail(oss)};
    }
    by_worker[static_cast<std::size_t>(p.worker)].push_back(
        Segment{p.start, p.end, id});
  }

  for (const AbortedSegment& a : schedule.aborted()) {
    if (a.worker < 0 || a.worker >= platform.workers()) {
      oss << "aborted segment of task " << a.task << " on invalid worker "
          << a.worker;
      return {false, fail(oss)};
    }
    const double full =
        Platform::time_on(tasks[static_cast<std::size_t>(a.task)],
                          platform.type_of(a.worker));
    const double ran = a.abort_time - a.start;
    if (ran < -tol || (options.exact_durations && ran > full + tol)) {
      oss << "aborted segment of task " << a.task << " ran " << ran
          << ", full time is " << full;
      return {false, fail(oss)};
    }
    // A zero-length segment (task spoliated at the very instant it started)
    // occupies no time on the worker; keeping it would falsely trip the
    // overlap scan against a real segment sharing the same start.
    if (ran > tol) {
      by_worker[static_cast<std::size_t>(a.worker)].push_back(
          Segment{a.start, a.abort_time, a.task});
    }
  }

  for (std::size_t w = 0; w < by_worker.size(); ++w) {
    auto& segs = by_worker[w];
    std::sort(segs.begin(), segs.end(),
              [](const Segment& a, const Segment& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < segs.size(); ++i) {
      if (segs[i].start < segs[i - 1].end - tol) {
        oss << "worker " << w << ": task " << segs[i].task << " starts at "
            << segs[i].start << " before task " << segs[i - 1].task
            << " ends at " << segs[i - 1].end;
        return {false, fail(oss)};
      }
    }
  }
  return {};
}

}  // namespace

ScheduleCheck check_schedule(const Schedule& schedule,
                             std::span<const Task> tasks,
                             const Platform& platform, double tol) {
  return check_core(schedule, tasks, platform, ScheduleCheckOptions{.tol = tol});
}

ScheduleCheck check_schedule(const Schedule& schedule,
                             std::span<const Task> tasks,
                             const Platform& platform,
                             const ScheduleCheckOptions& options) {
  return check_core(schedule, tasks, platform, options);
}

ScheduleCheck check_schedule(const Schedule& schedule, const TaskGraph& graph,
                             const Platform& platform,
                             const ScheduleCheckOptions& options) {
  ScheduleCheck core = check_core(schedule, graph.tasks(), platform, options);
  if (!core.ok) return core;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    const Placement& p = schedule.placement(id);
    for (TaskId pred : graph.predecessors(id)) {
      const Placement& pp = schedule.placement(pred);
      if (!p.placed()) continue;  // allowed only when !require_complete
      if (!pp.placed()) {
        // A task cannot have run when a dependency never finished,
        // regardless of completeness relaxation.
        std::ostringstream oss;
        oss << "task " << id << " placed but predecessor " << pred
            << " is not";
        return {false, oss.str()};
      }
      if (p.start < pp.end - options.tol) {
        std::ostringstream oss;
        oss << "task " << id << " starts at " << p.start
            << " before predecessor " << pred << " ends at " << pp.end;
        return {false, oss.str()};
      }
    }
  }
  return {};
}

ScheduleCheck check_schedule(const Schedule& schedule, const TaskGraph& graph,
                             const Platform& platform, double tol) {
  return check_schedule(schedule, graph, platform,
                        ScheduleCheckOptions{.tol = tol});
}

}  // namespace hp
