#include "sched/executor.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace hp {

Schedule execute_static_plan(const Schedule& plan, const TaskGraph& graph,
                             const Platform& platform,
                             std::span<const Task> actual_times) {
  assert(graph.finalized());
  assert(plan.num_tasks() == graph.size());
  const std::span<const Task> actuals =
      actual_times.empty() ? graph.tasks() : actual_times;
  assert(actuals.size() == graph.size());

  // Per-worker task queues in planned start order.
  std::vector<std::vector<TaskId>> queue(
      static_cast<std::size_t>(platform.workers()));
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Placement& p = plan.placement(static_cast<TaskId>(i));
    assert(p.placed());
    queue[static_cast<std::size_t>(p.worker)].push_back(static_cast<TaskId>(i));
  }
  for (auto& q : queue) {
    std::sort(q.begin(), q.end(), [&](TaskId a, TaskId b) {
      const double sa = plan.placement(a).start;
      const double sb = plan.placement(b).start;
      if (sa != sb) return sa < sb;
      return a < b;
    });
  }

  // Iteratively release the earliest startable head-of-queue task. With W
  // workers this is O(T * W) — fine for replay purposes.
  Schedule out(graph.size());
  std::vector<std::size_t> head(queue.size(), 0);
  std::vector<double> worker_free(queue.size(), 0.0);
  std::vector<double> completion(graph.size(), -1.0);
  std::size_t remaining = graph.size();

  while (remaining > 0) {
    WorkerId best_w = -1;
    double best_start = 0.0;
    for (WorkerId w = 0; w < platform.workers(); ++w) {
      const auto wi = static_cast<std::size_t>(w);
      if (head[wi] >= queue[wi].size()) continue;
      const TaskId id = queue[wi][head[wi]];
      double ready = worker_free[wi];
      bool deps_scheduled = true;
      for (TaskId pred : graph.predecessors(id)) {
        const double c = completion[static_cast<std::size_t>(pred)];
        if (c < 0.0) {
          deps_scheduled = false;
          break;
        }
        ready = std::max(ready, c);
      }
      if (!deps_scheduled) continue;
      if (best_w < 0 || ready < best_start ||
          (ready == best_start && w < best_w)) {
        best_w = w;
        best_start = ready;
      }
    }
    assert(best_w >= 0 && "static plan deadlocked (cyclic waiting)");
    const auto wi = static_cast<std::size_t>(best_w);
    const TaskId id = queue[wi][head[wi]++];
    const double dt = Platform::time_on(actuals[static_cast<std::size_t>(id)],
                                        platform.type_of(best_w));
    out.place(id, best_w, best_start, best_start + dt);
    completion[static_cast<std::size_t>(id)] = best_start + dt;
    worker_free[wi] = best_start + dt;
    --remaining;
  }
  return out;
}

}  // namespace hp
