#include "sched/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hp {

namespace {

/// One executed interval on a worker: a final placement or a spoliated
/// partial. `task`+`aborted` identify it uniquely.
struct WorkerSegment {
  TaskId task = kInvalidTask;
  double begin = 0.0;
  double end = 0.0;
  bool aborted = false;
};

struct Explainer {
  bool found = false;
  WorkerSegment segment;
  WorkerId worker = -1;
  CpLink link = CpLink::kMakespan;
};

}  // namespace

const char* cp_link_name(CpLink link) noexcept {
  switch (link) {
    case CpLink::kMakespan: return "makespan";
    case CpLink::kDependency: return "dependency";
    case CpLink::kWorker: return "worker-busy";
  }
  return "?";
}

CriticalPathReport build_critical_path(const Schedule& schedule,
                                       std::span<const Task> tasks,
                                       const Platform& platform,
                                       const TaskGraph* graph) {
  CriticalPathReport report;
  report.makespan = schedule.makespan();
  const double eps = 1e-9 * std::max(1.0, report.makespan);

  // Per-worker timelines sorted by end time, so the latest interval
  // finishing at or before an instant is one upper_bound away.
  std::vector<std::vector<WorkerSegment>> timeline(
      static_cast<std::size_t>(platform.workers()));
  const auto placements = schedule.placements();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const Placement& p = placements[i];
    if (!p.placed()) continue;
    timeline[static_cast<std::size_t>(p.worker)].push_back(
        WorkerSegment{static_cast<TaskId>(i), p.start, p.end, false});
  }
  for (const AbortedSegment& a : schedule.aborted()) {
    timeline[static_cast<std::size_t>(a.worker)].push_back(
        WorkerSegment{a.task, a.start, a.abort_time, true});
  }
  for (auto& lane : timeline) {
    std::sort(lane.begin(), lane.end(),
              [](const WorkerSegment& a, const WorkerSegment& b) {
                return a.end != b.end ? a.end < b.end : a.begin < b.begin;
              });
  }

  // Chain anchor: the placement that defines the makespan.
  Explainer cur;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const Placement& p = placements[i];
    if (!p.placed()) continue;
    if (!cur.found || p.end > cur.segment.end) {
      cur.found = true;
      cur.segment = WorkerSegment{static_cast<TaskId>(i), p.start, p.end, false};
      cur.worker = p.worker;
      cur.link = CpLink::kMakespan;
    }
  }
  if (!cur.found) return report;

  // Walk backwards; segments are collected newest-first and reversed at the
  // end. Each step moves to an interval with a strictly earlier end, so the
  // walk terminates after at most one visit per executed interval.
  std::vector<CpSegment> chain;
  while (true) {
    chain.push_back(CpSegment{cur.segment.task, cur.worker, cur.segment.begin,
                              cur.segment.end, cur.segment.aborted, cur.link});
    if (cur.segment.begin <= eps) break;

    // Candidate 1: the latest-finishing dependency predecessor whose
    // completion released this task.
    Explainer next;
    if (graph != nullptr) {
      for (const TaskId pred : graph->predecessors(cur.segment.task)) {
        const Placement& pp = schedule.placement(pred);
        if (!pp.placed() || pp.end > cur.segment.begin + eps) continue;
        if (!next.found || pp.end > next.segment.end) {
          next.found = true;
          next.segment = WorkerSegment{pred, pp.start, pp.end, false};
          next.worker = pp.worker;
          next.link = CpLink::kDependency;
        }
      }
    }

    // Candidate 2: the previous occupant of the same worker. Wins only when
    // it finishes strictly later than the best dependency (a dependency that
    // ends at the same instant is the more causal explanation).
    const auto& lane = timeline[static_cast<std::size_t>(cur.worker)];
    const double begin = cur.segment.begin;
    auto it = std::upper_bound(lane.begin(), lane.end(), begin + eps,
                               [](double t, const WorkerSegment& s) {
                                 return t < s.end;
                               });
    while (it != lane.begin()) {
      --it;
      if (it->task == cur.segment.task && it->aborted == cur.segment.aborted) {
        continue;  // the current interval itself (zero-length predecessors)
      }
      if (!next.found || it->end > next.segment.end + eps) {
        next.found = true;
        next.segment = *it;
        next.worker = cur.worker;
        next.link = CpLink::kWorker;
      }
      break;
    }

    if (!next.found) {
      // Nothing explains this start: the chain begins with front idle.
      if (begin > eps) {
        chain.push_back(
            CpSegment{kInvalidTask, cur.worker, 0.0, begin, false, cur.link});
      }
      break;
    }
    if (next.segment.end < begin - eps) {
      // Gap between the explainer and this segment: uncovered idle.
      chain.push_back(CpSegment{kInvalidTask, next.worker, next.segment.end,
                                begin, false, next.link});
    }
    cur = next;
  }
  std::reverse(chain.begin(), chain.end());
  report.segments = std::move(chain);

  for (const CpSegment& s : report.segments) {
    if (s.is_idle()) {
      report.idle_time += s.span();
      continue;
    }
    report.compute_time += s.span();
    const auto kind =
        static_cast<std::size_t>(tasks[static_cast<std::size_t>(s.task)].kind);
    if (kind < kNumKernelKinds) report.compute_by_kind[kind] += s.span();
    if (s.aborted) ++report.aborted_segments;
    switch (s.link) {
      case CpLink::kDependency: ++report.dependency_links; break;
      case CpLink::kWorker: ++report.worker_links; break;
      case CpLink::kMakespan: break;
    }
  }
  return report;
}

std::string describe(const CriticalPathReport& report,
                     std::span<const Task> tasks, const Platform& platform,
                     std::size_t max_segments) {
  std::ostringstream out;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "critical path: %zu segments over makespan %.6g "
                "(compute %.1f%%, idle %.1f%%)\n",
                report.segments.size(), report.makespan,
                100.0 * report.compute_fraction(),
                report.makespan > 0.0
                    ? 100.0 * report.idle_time / report.makespan
                    : 0.0);
  out << buf;
  std::snprintf(buf, sizeof buf,
                "links: %zu dependency, %zu worker-busy; %zu spoliated "
                "partial(s) on the chain\n",
                report.dependency_links, report.worker_links,
                report.aborted_segments);
  out << buf;

  bool any_kind = false;
  for (std::size_t k = 0; k < kNumKernelKinds; ++k) {
    if (report.compute_by_kind[k] <= 0.0) continue;
    if (!any_kind) {
      out << "compute by kernel:";
      any_kind = true;
    }
    std::snprintf(buf, sizeof buf, " %s=%.6g",
                  kernel_name(static_cast<KernelKind>(k)),
                  report.compute_by_kind[k]);
    out << buf;
  }
  if (any_kind) out << '\n';

  // Longest segments first: the tuning targets.
  std::vector<const CpSegment*> by_span;
  by_span.reserve(report.segments.size());
  for (const CpSegment& s : report.segments) by_span.push_back(&s);
  std::stable_sort(by_span.begin(), by_span.end(),
                   [](const CpSegment* a, const CpSegment* b) {
                     return a->span() > b->span();
                   });
  if (by_span.size() > max_segments) by_span.resize(max_segments);
  if (!by_span.empty()) out << "longest segments:\n";
  for (const CpSegment* s : by_span) {
    if (s->is_idle()) {
      std::snprintf(buf, sizeof buf, "  [%.6g, %.6g] idle (%.6g)\n", s->begin,
                    s->end, s->span());
      out << buf;
      continue;
    }
    const Task& task = tasks[static_cast<std::size_t>(s->task)];
    const bool on_gpu = platform.type_of(s->worker) == Resource::kGpu;
    std::snprintf(buf, sizeof buf,
                  "  [%.6g, %.6g] task %lld %s on %s %d%s -> %s\n", s->begin,
                  s->end, static_cast<long long>(s->task),
                  kernel_name(task.kind), on_gpu ? "gpu" : "cpu",
                  static_cast<int>(s->worker),
                  s->aborted ? " (spoliated partial)" : "",
                  cp_link_name(s->link));
    out << buf;
  }
  return out.str();
}

void add_to_registry(const CriticalPathReport& report,
                     obs::CounterRegistry& registry) {
  registry.set("cp_segments", static_cast<double>(report.segments.size()));
  registry.set("cp_compute_time", report.compute_time);
  registry.set("cp_idle_time", report.idle_time);
  registry.set("cp_compute_fraction", report.compute_fraction());
  registry.set("cp_dependency_links",
               static_cast<double>(report.dependency_links));
  registry.set("cp_worker_links", static_cast<double>(report.worker_links));
  registry.set("cp_aborted_segments",
               static_cast<double>(report.aborted_segments));
}

}  // namespace hp
