#pragma once
// Schedule exporters: Chrome trace-event JSON (load in chrome://tracing or
// Perfetto) and standalone SVG Gantt charts. Practical inspection tooling
// for schedules beyond the terminal ASCII Gantt.

#include <span>
#include <string>

#include "model/platform.hpp"
#include "sched/schedule.hpp"

namespace hp {

/// Chrome trace-event JSON ("X" complete events, one lane per worker;
/// aborted spoliation segments appear as "(aborted)" slices). Times are
/// interpreted as microseconds by the viewer. `tasks` provides names/kinds
/// and must parallel the schedule.
[[nodiscard]] std::string to_chrome_trace(const Schedule& schedule,
                                          std::span<const Task> tasks,
                                          const Platform& platform);

struct SvgOptions {
  int width = 1200;        ///< drawing width in px (plus a label gutter)
  int row_height = 22;     ///< lane height per worker
  bool show_aborted = true;
};

/// Standalone SVG Gantt: one lane per worker, tasks colored by kernel kind,
/// aborted segments hatched gray.
[[nodiscard]] std::string to_svg_gantt(const Schedule& schedule,
                                       std::span<const Task> tasks,
                                       const Platform& platform,
                                       const SvgOptions& options = {});

}  // namespace hp
