#pragma once
// Schedule metrics used in the paper's evaluation (§6.2, Figs 8 and 9).

#include <span>

#include "model/instance.hpp"
#include "model/platform.hpp"
#include "obs/counters.hpp"
#include "sched/schedule.hpp"

namespace hp {

/// Per-resource-type aggregates of a schedule.
struct ResourceMetrics {
  double busy_time = 0.0;     ///< completed work only
  double aborted_time = 0.0;  ///< work lost to spoliation
  double idle_time = 0.0;     ///< count(r)*makespan - busy_time (aborted work
                              ///< counts as idle, per the §6.2 footnote)
  int tasks_completed = 0;
  /// Aborted attempts charged to this resource type (spoliation victims,
  /// injected task failures, crash aborts). Each attempt's time is in
  /// aborted_time, attributed to the worker that actually ran it.
  int attempts_aborted = 0;
  /// Equivalent acceleration factor A_r = sum(p_i)/sum(q_i) over tasks
  /// completed on this resource type (Fig 8). NaN when no task completed.
  double equivalent_accel = 0.0;
};

struct ScheduleMetrics {
  double makespan = 0.0;
  ResourceMetrics cpu;
  ResourceMetrics gpu;
  /// Scheduler counters (spoliation attempts/skips, queue pressure, idle
  /// fractions). compute_metrics fills the schedule-derivable subset; runs
  /// with a live event stream overwrite it with counters_from_events for
  /// the full set.
  obs::SchedulerCounters counters{};

  [[nodiscard]] const ResourceMetrics& of(Resource r) const noexcept {
    return r == Resource::kCpu ? cpu : gpu;
  }
};

/// Compute all metrics of `schedule` for the tasks it places.
[[nodiscard]] ScheduleMetrics compute_metrics(const Schedule& schedule,
                                              std::span<const Task> tasks,
                                              const Platform& platform);

/// Normalized idle time of resource `r` (Fig 9): idle time divided by the
/// amount of that resource used in the lower-bound solution, i.e.
/// count(r) * lower_bound (the area-bound solution keeps both resource
/// classes fully busy for exactly the bound, Lemma 1).
[[nodiscard]] double normalized_idle(const ScheduleMetrics& metrics, Resource r,
                                     const Platform& platform,
                                     double lower_bound) noexcept;

}  // namespace hp
