#include "comm/comm_model.hpp"

namespace hp {

std::vector<double> uniform_payloads(const TaskGraph& graph, double size_mb) {
  return std::vector<double>(graph.size(), size_mb);
}

}  // namespace hp
