#pragma once
// Communication cost model for CPU<->GPU data movement.
//
// The paper's §1 lists what a runtime scheduler knows: "(iv) the location of
// all input files of all tasks (v) possibly an estimation of the duration
// of ... each communication between each pair of resources" — but its
// theoretical model ignores transfers. This module adds them back as an
// extension: every task has an output payload; when a task consumes a
// predecessor's output across the CPU/GPU memory boundary, the transfer
// costs latency + size/bandwidth. Transfers from host memory to any CPU and
// between CPUs are free (shared RAM); GPU->GPU goes through the host and
// costs twice the boundary crossing.

#include <cstddef>
#include <span>
#include <vector>

#include "dag/task_graph.hpp"
#include "model/platform.hpp"

namespace hp {

struct CommModel {
  /// Host <-> device bandwidth in MB per millisecond (≈ GB/s).
  double bandwidth_mb_per_ms = 12.0;
  /// Fixed per-transfer latency in ms (driver + DMA setup).
  double latency_ms = 0.02;

  /// Transfer time of `size_mb` across one host/device boundary.
  [[nodiscard]] double boundary_cost(double size_mb) const noexcept {
    return latency_ms + size_mb / bandwidth_mb_per_ms;
  }

  /// Time to move a payload produced on `from` so a worker `to` can read
  /// it. Same worker or CPU->CPU: free. CPU<->GPU: one boundary.
  /// GPU->GPU (different devices): two boundaries (through the host).
  [[nodiscard]] double transfer_time(const Platform& platform, WorkerId from,
                                     WorkerId to, double size_mb) const noexcept {
    if (from == to || size_mb <= 0.0) return 0.0;
    const Resource rf = platform.type_of(from);
    const Resource rt = platform.type_of(to);
    if (rf == Resource::kCpu && rt == Resource::kCpu) return 0.0;
    if (rf == Resource::kGpu && rt == Resource::kGpu) {
      return 2.0 * boundary_cost(size_mb);
    }
    return boundary_cost(size_mb);
  }
};

/// Per-task output payload sizes (MB), parallel to a graph's tasks.
/// `uniform_payloads` covers the dense-linear-algebra case where every
/// kernel writes one tile (e.g. a 960x960 double tile is ~7.03 MB).
[[nodiscard]] std::vector<double> uniform_payloads(const TaskGraph& graph,
                                                   double size_mb = 7.03);

}  // namespace hp
