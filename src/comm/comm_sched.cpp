#include "comm/comm_sched.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <set>

#include "dag/ready_tracker.hpp"
#include "sim/event_queue.hpp"
#include "sim/worker_pool.hpp"

namespace hp {

namespace {

/// Mean transfer cost of one payload over all ordered worker pairs —
/// the averaging HEFT's rank computation uses for edge weights.
double mean_transfer(const Platform& platform, const CommModel& comm,
                     double size_mb) {
  const double m = platform.cpus();
  const double n = platform.gpus();
  const double total = m + n;
  if (total <= 1.0) return 0.0;
  // Ordered pairs (from, to), from != to.
  const double cross = 2.0 * m * n * comm.boundary_cost(size_mb);
  const double gpu_gpu = n * (n - 1.0) * 2.0 * comm.boundary_cost(size_mb);
  return (cross + gpu_gpu) / (total * (total - 1.0));
}

/// Upward rank with mean communication on edges.
std::vector<double> comm_ranks(const TaskGraph& graph, const Platform& platform,
                               const CommModel& comm,
                               std::span<const double> payloads,
                               RankScheme scheme) {
  const std::span<const TaskId> order = graph.topo_order();
  std::vector<double> rank(graph.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId id = *it;
    const double edge_cost = mean_transfer(
        platform, comm, payloads[static_cast<std::size_t>(id)]);
    double succ_max = 0.0;
    for (TaskId succ : graph.successors(id)) {
      succ_max =
          std::max(succ_max, edge_cost + rank[static_cast<std::size_t>(succ)]);
    }
    rank[static_cast<std::size_t>(id)] =
        rank_weight(graph.task(id), scheme) + succ_max;
  }
  return rank;
}

/// Busy-interval timeline (same structure as the HEFT one; kept local so
/// the comm module stays self-contained).
class Timeline {
 public:
  [[nodiscard]] double earliest_start(double ready, double dt,
                                      bool insertion) const {
    if (segments_.empty()) return ready;
    if (!insertion) return std::max(ready, segments_.back().second);
    auto it = std::lower_bound(
        segments_.begin(), segments_.end(), ready,
        [](const auto& seg, double t) { return seg.second <= t; });
    double candidate = ready;
    if (it != segments_.begin()) {
      candidate = std::max(ready, std::prev(it)->second);
    }
    while (it != segments_.end()) {
      if (candidate + dt <= it->first) return candidate;
      candidate = std::max(candidate, it->second);
      ++it;
    }
    return candidate;
  }

  void insert(double start, double end) {
    auto it = std::lower_bound(
        segments_.begin(), segments_.end(), std::make_pair(start, end));
    segments_.insert(it, {start, end});
  }

 private:
  std::vector<std::pair<double, double>> segments_;
};

}  // namespace

Schedule heft_comm(const TaskGraph& graph, const Platform& platform,
                   const CommModel& comm, std::span<const double> payloads,
                   const HeftCommOptions& options) {
  assert(graph.finalized());
  assert(payloads.size() == graph.size());
  assert(options.rank != RankScheme::kFifo);

  const std::vector<double> rank =
      comm_ranks(graph, platform, comm, payloads, options.rank);
  std::vector<TaskId> order(graph.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  const std::span<const TaskId> topo = graph.topo_order();
  std::vector<std::size_t> topo_pos(graph.size());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    topo_pos[static_cast<std::size_t>(topo[i])] = i;
  }
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double ra = rank[static_cast<std::size_t>(a)];
    const double rb = rank[static_cast<std::size_t>(b)];
    if (ra != rb) return ra > rb;
    return topo_pos[static_cast<std::size_t>(a)] <
           topo_pos[static_cast<std::size_t>(b)];
  });

  Schedule schedule(graph.size());
  std::vector<Timeline> timeline(static_cast<std::size_t>(platform.workers()));
  for (TaskId id : order) {
    WorkerId best_w = 0;
    double best_start = 0.0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (WorkerId w = 0; w < platform.workers(); ++w) {
      double ready = 0.0;
      for (TaskId pred : graph.predecessors(id)) {
        const Placement& pp = schedule.placement(pred);
        ready = std::max(
            ready, pp.end + comm.transfer_time(
                               platform, pp.worker, w,
                               payloads[static_cast<std::size_t>(pred)]));
      }
      const double dt = Platform::time_on(graph.task(id), platform.type_of(w));
      const double start = timeline[static_cast<std::size_t>(w)].earliest_start(
          ready, dt, options.insertion);
      if (start + dt < best_finish) {
        best_finish = start + dt;
        best_start = start;
        best_w = w;
      }
    }
    timeline[static_cast<std::size_t>(best_w)].insert(best_start, best_finish);
    schedule.place(id, best_w, best_start, best_finish);
  }
  return schedule;
}

Schedule heteroprio_comm(const TaskGraph& graph, const Platform& platform,
                         const CommModel& comm,
                         std::span<const double> payloads,
                         HeteroPrioCommStats* stats,
                         const HeteroPrioCommOptions& options) {
  assert(graph.finalized());
  assert(payloads.size() == graph.size());
  const std::span<const Task> tasks = graph.tasks();

  Schedule schedule(tasks.size());
  HeteroPrioCommStats local;

  struct QueueOrder {
    std::span<const Task> tasks;
    bool operator()(TaskId a, TaskId b) const noexcept {
      const Task& ta = tasks[static_cast<std::size_t>(a)];
      const Task& tb = tasks[static_cast<std::size_t>(b)];
      if (ta.accel() != tb.accel()) return ta.accel() > tb.accel();
      if (ta.priority != tb.priority) {
        return ta.accel() >= 1.0 ? ta.priority > tb.priority
                                 : ta.priority < tb.priority;
      }
      return a < b;
    }
  };

  sim::WorkerPool pool(platform);
  sim::EventQueue<std::pair<WorkerId, std::uint64_t>> events;
  std::vector<std::uint64_t> generation(
      static_cast<std::size_t>(platform.workers()), 0);
  std::set<TaskId, QueueOrder> queue{QueueOrder{tasks}};
  ReadyTracker tracker(graph);
  for (TaskId id : tracker.initially_ready()) queue.insert(id);

  double now = 0.0;
  std::size_t completed = 0;

  // Staging delay: inputs move to `w` in parallel; delay = max transfer.
  auto stage_delay = [&](TaskId id, WorkerId w) {
    double delay = 0.0;
    for (TaskId pred : graph.predecessors(id)) {
      const Placement& pp = schedule.placement(pred);
      delay = std::max(
          delay, comm.transfer_time(platform, pp.worker, w,
                                    payloads[static_cast<std::size_t>(pred)]));
    }
    return delay;
  };

  auto start_task = [&](WorkerId w, TaskId id) {
    const double stage = stage_delay(id, w);
    local.transfer_time_total += stage;
    const double dt =
        stage + Platform::time_on(tasks[static_cast<std::size_t>(id)],
                                  platform.type_of(w));
    const double finish = pool.start(w, id, now, dt);
    ++generation[static_cast<std::size_t>(w)];
    events.push(finish, {w, generation[static_cast<std::size_t>(w)]});
  };

  auto try_spoliate = [&](WorkerId w) -> bool {
    const Resource mine = platform.type_of(w);
    std::vector<WorkerId> victims = pool.busy_workers(other(mine));
    std::sort(victims.begin(), victims.end(), [&](WorkerId a, WorkerId b) {
      const double pa =
          tasks[static_cast<std::size_t>(pool.running(a).task)].priority;
      const double pb =
          tasks[static_cast<std::size_t>(pool.running(b).task)].priority;
      if (pa != pb) return pa > pb;
      if (pool.running(a).finish != pool.running(b).finish) {
        return pool.running(a).finish > pool.running(b).finish;
      }
      return pool.running(a).task < pool.running(b).task;
    });
    for (WorkerId victim : victims) {
      const sim::Running& r = pool.running(victim);
      const double dt =
          stage_delay(r.task, w) +
          Platform::time_on(tasks[static_cast<std::size_t>(r.task)], mine);
      const double margin = 1e-9 * std::max(1.0, std::abs(r.finish));
      if (now + dt >= r.finish - margin) continue;
      const sim::Running aborted = pool.release(victim);
      ++generation[static_cast<std::size_t>(victim)];
      schedule.add_aborted(aborted.task, victim, aborted.start, now);
      ++local.spoliations;
      start_task(w, aborted.task);
      return true;
    }
    return false;
  };

  auto dispatch = [&] {
    bool acted = true;
    while (acted) {
      acted = false;
      for (WorkerId w : pool.idle_workers_gpu_first()) {
        if (pool.busy(w)) continue;
        if (!queue.empty()) {
          // Inspect up to locality_window candidates from this worker's end
          // of the affinity queue and pick the cheapest-to-stage one.
          const bool from_front = platform.type_of(w) == Resource::kGpu;
          auto best_it = queue.end();
          double best_delay = std::numeric_limits<double>::infinity();
          const int window = std::max(1, options.locality_window);
          if (from_front) {
            auto it = queue.begin();
            for (int c = 0; c < window && it != queue.end(); ++c, ++it) {
              const double delay = stage_delay(*it, w);
              if (delay < best_delay) {
                best_delay = delay;
                best_it = it;
              }
            }
          } else {
            auto it = std::prev(queue.end());
            for (int c = 0; c < window; ++c) {
              const double delay = stage_delay(*it, w);
              if (delay < best_delay) {
                best_delay = delay;
                best_it = it;
              }
              if (it == queue.begin()) break;
              --it;
            }
          }
          const TaskId id = *best_it;
          queue.erase(best_it);
          start_task(w, id);
          acted = true;
        } else if (try_spoliate(w)) {
          acted = true;
        }
      }
    }
  };

  dispatch();
  while (completed < tasks.size()) {
    assert(!events.empty());
    const double t = events.top().time;
    now = t;
    while (!events.empty() && events.top().time == t) {
      const auto ev = events.pop();
      const auto [w, gen] = ev.payload;
      if (gen != generation[static_cast<std::size_t>(w)]) continue;
      if (!pool.busy(w)) continue;
      const sim::Running done = pool.release(w);
      schedule.place(done.task, w, done.start, done.finish);
      ++completed;
      for (TaskId released : tracker.complete(done.task)) queue.insert(released);
    }
    dispatch();
  }

  if (stats != nullptr) *stats = local;
  return schedule;
}

}  // namespace hp
