#pragma once
// Communication-aware scheduling (extension; see comm_model.hpp).
//
// * heft_comm — classic HEFT as published [11]: upward ranks include the
//   mean edge communication cost, EST accounts for predecessor placements,
//   insertion-based EFT. With a zero-cost CommModel it reduces to heft().
// * heteroprio_comm — HeteroPrio where a task's execution on a worker is
//   preceded by the transfer of its inputs across the memory boundary
//   (transfers of distinct inputs overlap: the delay is the max, not the
//   sum). Spoliation decisions account for the victim's inputs having to
//   move to the thief.

#include <span>
#include <vector>

#include "comm/comm_model.hpp"
#include "core/heteroprio.hpp"
#include "dag/ranking.hpp"
#include "dag/task_graph.hpp"
#include "sched/schedule.hpp"

namespace hp {

struct HeftCommOptions {
  RankScheme rank = RankScheme::kAvg;
  bool insertion = true;
};

/// HEFT with communication costs. `payloads` gives each task's output size
/// in MB (see uniform_payloads).
[[nodiscard]] Schedule heft_comm(const TaskGraph& graph,
                                 const Platform& platform,
                                 const CommModel& comm,
                                 std::span<const double> payloads,
                                 const HeftCommOptions& options = {});

struct HeteroPrioCommStats {
  int spoliations = 0;
  double transfer_time_total = 0.0;  ///< summed input-staging delays
};

struct HeteroPrioCommOptions {
  /// Locality-aware candidate window (LAHeteroPrio-style): an idle worker
  /// inspects up to this many tasks from its end of the affinity queue and
  /// takes the one with the smallest input-staging delay (ties: closest to
  /// its queue end). 1 = the paper's communication-oblivious behavior.
  int locality_window = 1;
};

/// HeteroPrio with input-transfer delays. Priorities must be assigned.
[[nodiscard]] Schedule heteroprio_comm(const TaskGraph& graph,
                                       const Platform& platform,
                                       const CommModel& comm,
                                       std::span<const double> payloads,
                                       HeteroPrioCommStats* stats = nullptr,
                                       const HeteroPrioCommOptions& options = {});

}  // namespace hp
