// hp_sched — command-line front end to the library.
//
//   hp_sched generate --kind cholesky --tiles 16 --out chol16.hpg
//   hp_sched bound    --in chol16.hpg --cpus 20 --gpus 4
//   hp_sched schedule --in chol16.hpg --cpus 20 --gpus 4 --algo hp \
//            [--rank min] [--gantt] [--svg out.svg] [--trace out.json]
//   hp_sched trace    --in chol16.hpg --cpus 20 --gpus 4 --out out.json \
//            [--csv out.csv]
//   hp_sched report   --in chol16.hpg --cpus 20 --gpus 4
//
// Files use the text formats of src/io/serialize.hpp: `.hpg` graphs carry
// "edge" lines; instance files (independent tasks) have none. `schedule`,
// `trace` and `report` auto-detect which one they got.

#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <vector>
#include <iostream>
#include <map>
#include <string>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "baselines/online_greedy.hpp"
#include "bounds/area_bound.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "fault/fault_plan.hpp"
#include "fault/replay.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/runner.hpp"
#include "io/serialize.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/fmm.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "obs/counters.hpp"
#include "obs/derive.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_csv.hpp"
#include "obs/export_flame.hpp"
#include "obs/export_prometheus.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/watchdog.hpp"
#include "online/arrival.hpp"
#include "online/runtime.hpp"
#include "model/generators.hpp"
#include "serve/driver.hpp"
#include "util/rng.hpp"
#include "perf/json_scan.hpp"
#include "perf/perf_baseline.hpp"
#include "perf/perf_compare.hpp"
#include "perf/perf_dag.hpp"
#include "perf/perf_obs.hpp"
#include "perf/perf_online.hpp"
#include "perf/perf_serve.hpp"
#include "sched/critical_path.hpp"
#include "sched/export.hpp"
#include "sched/gantt.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "util/table.hpp"
#include "worstcase/instances.hpp"

namespace {

using namespace hp;

struct Args {
  std::map<std::string, std::string> options;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stoi(it->second);
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

int usage() {
  std::cerr <<
      "usage:\n"
      "  hp_sched generate --kind cholesky|qr|qr-tt|lu|fmm --tiles N\n"
      "           [--depth D] [--independent] --out FILE\n"
      "  hp_sched info     --in FILE\n"
      "  hp_sched bound    --in FILE --cpus M --gpus N\n"
      "  hp_sched schedule --in FILE --cpus M --gpus N\n"
      "           [--algo hp|hp-nospol|heft|dualhp|online-eft|online-threshold|online-balance]\n"
      "           [--rank avg|min|fifo] [--gantt] [--svg FILE] [--trace FILE]\n"
      "           [--threads N] [--free-running]   (hp/hp-nospol, independent)\n"
      "  hp_sched trace    --in FILE --cpus M --gpus N [--algo ...] [--rank ...]\n"
      "           [--out FILE.json] [--csv FILE.csv]\n"
      "  hp_sched report   --in FILE --cpus M --gpus N [--algo ...] [--rank ...]\n"
      "           [--critical-path] [--metrics-out FILE.prom]\n"
      "           [--flame FILE.folded] [--tick-clock]\n"
      "  hp_sched faults   --in FILE --cpus M --gpus N [--algo hp|hp-nospol|heft|dualhp]\n"
      "           [--rank ...] [--crashes K] [--stragglers K] [--task-fail P]\n"
      "           [--slow X] [--retries K] [--backoff B] [--seed S] [--horizon H]\n"
      "           [--plan FILE.hpf] [--save-plan FILE.hpf] [--trace FILE.json]\n"
      "           [--csv FILE.csv]\n"
      "  hp_sched online   --in FILE --cpus M --gpus N [--rank ...]\n"
      "           [--rate R] [--deadline-factor F] [--arrival-seed S]\n"
      "           [--arrivals FILE.hpo] [--save-arrivals FILE.hpo]\n"
      "           [--watermark K] [--watermark-low K] [--shed defer|reject]\n"
      "           [--period T] [--straggler-factor X] [--respawns K]\n"
      "           [--crashes K] [--stragglers K] [--task-fail P] [--slow X]\n"
      "           [--retries K] [--backoff B] [--seed S] [--horizon H]\n"
      "           [--plan FILE.hpf] [--trace FILE.json] [--csv FILE.csv]\n"
      "  hp_sched serve    [--in FILE | --seed S [--tasks N]] --cpus M --gpus N\n"
      "           [--clients C] [--requests R] [--workers W] [--batch B]\n"
      "           [--watermark K] [--watermark-low K] [--shed defer|reject]\n"
      "           [--backend hp|hp-nospol|heft|dualhp|mixed] [--rank avg|min|fifo]\n"
      "           [--no-verify]\n"
      "  hp_sched perf     --out FILE [--dag-out FILE] [--quick] [--reps K]\n"
      "           [--threads N]\n"
      "  hp_sched perf-check --in FILE [--quick] [--against OLD]\n"
      "           [--tolerance X] [--budget X]\n"
      "  hp_sched fuzz     --seed S --runs N [--scheduler hp,heft,...|all]\n"
      "           [--props validity,ratio,...|all] [--out REPORT]\n"
      "           [--repro-dir DIR] [--max-tasks K] [--max-seconds T]\n"
      "           [--no-shrink]\n"
      "  hp_sched corpus   --dir DIR [--seed-worstcase]\n";
  return 2;
}

RankScheme parse_rank(const std::string& name) {
  if (name == "avg") return RankScheme::kAvg;
  if (name == "fifo") return RankScheme::kFifo;
  return RankScheme::kMin;
}

int cmd_generate(const Args& args) {
  const std::string kind = args.get("kind", "cholesky");
  const int tiles = args.get_int("tiles", 8);
  const std::string out = args.get("out");
  if (out.empty()) return usage();

  TaskGraph graph;
  if (kind == "cholesky") {
    graph = cholesky_dag(tiles);
  } else if (kind == "qr") {
    graph = qr_dag(tiles);
  } else if (kind == "qr-tt") {
    graph = qr_binary_dag(tiles);
  } else if (kind == "lu") {
    graph = lu_dag(tiles);
  } else if (kind == "fmm") {
    FmmParams params;
    params.depth = args.get_int("depth", 4);
    graph = fmm_dag(params);
  } else {
    std::cerr << "unknown kind '" << kind << "'\n";
    return 2;
  }

  const std::string text = args.options.count("independent")
                               ? io::instance_to_text(graph.to_instance())
                               : io::graph_to_text(graph);
  if (!io::save_text_file(out, text)) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  std::cout << "wrote " << graph.size() << " tasks ("
            << graph.num_edges() << " edges) to " << out << '\n';
  return 0;
}

/// Summarize a workload file: per-kernel counts, work totals, rho spread.
int cmd_info(const Args& args) {
  const auto text = io::load_text_file(args.get("in"));
  if (!text.has_value()) {
    std::cerr << "cannot read " << args.get("in") << '\n';
    return 1;
  }
  std::string error;
  std::vector<Task> tasks;
  std::string name;
  std::size_t edges = 0;
  double cp_min = 0.0;
  if (text->find("\nedge ") != std::string::npos) {
    const auto graph = io::graph_from_text(*text, &error);
    if (!graph.has_value()) {
      std::cerr << error << '\n';
      return 1;
    }
    tasks.assign(graph->tasks().begin(), graph->tasks().end());
    name = graph->name();
    edges = graph->num_edges();
    cp_min = critical_path(*graph, RankScheme::kMin);
  } else {
    const auto inst = io::instance_from_text(*text, &error);
    if (!inst.has_value()) {
      std::cerr << error << '\n';
      return 1;
    }
    tasks.assign(inst->tasks().begin(), inst->tasks().end());
    name = inst->name();
  }

  std::map<KernelKind, std::pair<int, double>> per_kind;  // count, cpu work
  double cpu_work = 0.0, gpu_work = 0.0;
  double rho_min = std::numeric_limits<double>::infinity(), rho_max = 0.0;
  for (const Task& t : tasks) {
    auto& entry = per_kind[t.kind];
    ++entry.first;
    entry.second += t.cpu_time;
    cpu_work += t.cpu_time;
    gpu_work += t.gpu_time;
    rho_min = std::min(rho_min, t.accel());
    rho_max = std::max(rho_max, t.accel());
  }
  std::cout << "name: " << name << "\ntasks: " << tasks.size()
            << "\nedges: " << edges << "\ntotal cpu work: " << cpu_work
            << "\ntotal gpu work: " << gpu_work << "\nrho range: [" << rho_min
            << ", " << rho_max << "]\n";
  if (cp_min > 0.0) std::cout << "critical path (min): " << cp_min << '\n';
  util::Table table({"kernel", "count", "cpu work", "share %"}, 2);
  for (const auto& [kind, entry] : per_kind) {
    table.row().cell(kernel_name(kind))
        .cell(static_cast<long long>(entry.first)).cell(entry.second)
        .cell(100.0 * entry.second / cpu_work);
  }
  table.print(std::cout);
  return 0;
}

int cmd_bound(const Args& args) {
  const auto text = io::load_text_file(args.get("in"));
  if (!text.has_value()) {
    std::cerr << "cannot read " << args.get("in") << '\n';
    return 1;
  }
  const Platform platform(args.get_int("cpus", 20), args.get_int("gpus", 4));
  std::string error;
  if (text->find("\nedge ") != std::string::npos) {
    const auto graph = io::graph_from_text(*text, &error);
    if (!graph.has_value()) {
      std::cerr << error << '\n';
      return 1;
    }
    const DagLowerBound lb = dag_lower_bound(*graph, platform);
    std::cout << "tasks: " << graph->size() << "\narea bound: " << lb.area
              << "\ncritical path (min): " << lb.critical_path
              << "\nsegmented: " << lb.segmented
              << "\nlower bound: " << lb.value() << '\n';
  } else {
    const auto inst = io::instance_from_text(*text, &error);
    if (!inst.has_value()) {
      std::cerr << error << '\n';
      return 1;
    }
    const AreaBoundResult ab = area_bound(inst->tasks(), platform);
    std::cout << "tasks: " << inst->size() << "\narea bound: " << ab.bound
              << "\nthreshold rho: " << ab.threshold_accel
              << "\nlower bound: " << opt_lower_bound(inst->tasks(), platform)
              << '\n';
  }
  return 0;
}

/// One scheduler run of the CLI: loaded workload, validated schedule and
/// the event stream the run emitted (native for HeteroPrio, replayed for
/// the static planners).
struct RunResult {
  Schedule schedule;
  std::vector<Task> tasks;
  TaskGraph graph;  ///< populated iff is_graph (dependency edges for reports)
  double lower_bound = 0.0;
  bool is_graph = false;
  obs::EventRecorder events;
};

/// Load `--in`, run `--algo` with an event recorder attached and validate
/// the schedule. On failure prints the error and sets `exit_code`.
/// `metrics` (optional) attaches a phase-profiling collector to the
/// schedulers that support one (hp, hp-nospol, heft, dualhp); the online
/// rules ignore it.
std::optional<RunResult> run_algorithm(const Args& args,
                                       const Platform& platform,
                                       int* exit_code,
                                       obs::MetricsCollector* metrics
                                       = nullptr) {
  const auto text = io::load_text_file(args.get("in"));
  if (!text.has_value()) {
    std::cerr << "cannot read " << args.get("in") << '\n';
    *exit_code = 1;
    return std::nullopt;
  }
  const std::string algo = args.get("algo", "hp");
  const RankScheme rank = parse_rank(args.get("rank", "min"));

  RunResult result;
  result.is_graph = text->find("\nedge ") != std::string::npos;
  obs::EventSink* sink = &result.events;
  std::string error;

  if (result.is_graph) {
    auto graph = io::graph_from_text(*text, &error);
    if (!graph.has_value()) {
      std::cerr << error << '\n';
      *exit_code = 1;
      return std::nullopt;
    }
    assign_priorities(*graph, rank);
    result.lower_bound = dag_lower_bound(*graph, platform).value();
    if (algo == "hp") {
      HeteroPrioOptions hp_options;
      hp_options.sink = sink;
      hp_options.metrics = metrics;
      result.schedule = heteroprio_dag(*graph, platform, hp_options);
    } else if (algo == "hp-nospol") {
      HeteroPrioOptions hp_options;
      hp_options.enable_spoliation = false;
      hp_options.sink = sink;
      hp_options.metrics = metrics;
      result.schedule = heteroprio_dag(*graph, platform, hp_options);
    } else if (algo == "heft") {
      result.schedule = heft(
          *graph, platform,
          {.rank = rank == RankScheme::kFifo ? RankScheme::kAvg : rank,
           .sink = sink, .metrics = metrics});
    } else if (algo == "dualhp") {
      result.schedule =
          dualhp_dag(*graph, platform,
                     {.fifo_order = rank == RankScheme::kFifo, .sink = sink,
                      .metrics = metrics});
    } else {
      std::cerr << "algorithm '" << algo << "' needs an independent-task "
                << "instance (or is unknown)\n";
      *exit_code = 2;
      return std::nullopt;
    }
    result.tasks.assign(graph->tasks().begin(), graph->tasks().end());
    const auto check = check_schedule(result.schedule, *graph, platform);
    if (!check.ok) {
      std::cerr << "internal error: invalid schedule: " << check.message << '\n';
      *exit_code = 1;
      return std::nullopt;
    }
    result.graph = std::move(*graph);
  } else {
    const auto inst = io::instance_from_text(*text, &error);
    if (!inst.has_value()) {
      std::cerr << error << '\n';
      *exit_code = 1;
      return std::nullopt;
    }
    result.lower_bound = opt_lower_bound(inst->tasks(), platform);
    // Parallel engine wiring: --threads N routes hp/hp-nospol through
    // par::heteroprio_par_run; --free-running drops the canonical bitwise
    // contract for throughput. The parallel fast path records no events,
    // so --threads > 1 disables event capture for these algorithms.
    const int threads = args.get_int("threads", 1);
    const bool free_running = args.get("free-running") == "1";
    if (algo == "hp") {
      HeteroPrioOptions hp_options;
      hp_options.sink = threads > 1 ? nullptr : sink;
      hp_options.metrics = metrics;
      hp_options.threads = threads;
      hp_options.canonical = !free_running;
      result.schedule = heteroprio(inst->tasks(), platform, hp_options);
    } else if (algo == "hp-nospol") {
      HeteroPrioOptions hp_options;
      hp_options.enable_spoliation = false;
      hp_options.sink = threads > 1 ? nullptr : sink;
      hp_options.metrics = metrics;
      hp_options.threads = threads;
      hp_options.canonical = !free_running;
      result.schedule = heteroprio(inst->tasks(), platform, hp_options);
    } else if (algo == "heft") {
      result.schedule = heft_independent(inst->tasks(), platform,
                                         {.sink = sink, .metrics = metrics});
    } else if (algo == "dualhp") {
      result.schedule = dualhp(inst->tasks(), platform,
                               {.sink = sink, .metrics = metrics});
    } else if (algo == "online-eft") {
      result.schedule = online_greedy(inst->tasks(), platform,
                                      {OnlineRule::kEft, 1.0, sink});
    } else if (algo == "online-threshold") {
      result.schedule = online_greedy(inst->tasks(), platform,
                                      {OnlineRule::kThreshold, 1.0, sink});
    } else if (algo == "online-balance") {
      result.schedule = online_greedy(inst->tasks(), platform,
                                      {OnlineRule::kBalance, 1.0, sink});
    } else {
      std::cerr << "unknown algorithm '" << algo << "'\n";
      *exit_code = 2;
      return std::nullopt;
    }
    result.tasks.assign(inst->tasks().begin(), inst->tasks().end());
    const auto check = check_schedule(result.schedule, result.tasks, platform);
    if (!check.ok) {
      std::cerr << "internal error: invalid schedule: " << check.message << '\n';
      *exit_code = 1;
      return std::nullopt;
    }
  }
  return result;
}

int cmd_schedule(const Args& args) {
  const Platform platform(args.get_int("cpus", 20), args.get_int("gpus", 4));
  int exit_code = 0;
  auto run = run_algorithm(args, platform, &exit_code);
  if (!run.has_value()) return exit_code;
  const std::string algo = args.get("algo", "hp");
  const Schedule& schedule = run->schedule;
  const std::vector<Task>& tasks = run->tasks;
  const double lower_bound = run->lower_bound;

  const ScheduleMetrics metrics = compute_metrics(schedule, tasks, platform);
  std::cout << "algorithm: " << algo << "\ntasks: " << tasks.size()
            << "\nmakespan: " << schedule.makespan()
            << "\nlower bound: " << lower_bound
            << "\nratio: " << schedule.makespan() / lower_bound
            << "\nspoliations: " << schedule.spoliation_count()
            << "\ncpu idle: " << metrics.cpu.idle_time
            << "\ngpu idle: " << metrics.gpu.idle_time << '\n';

  if (args.options.count("gantt")) {
    std::cout << render_gantt(schedule, platform, {.width = 100});
  }
  if (const std::string svg = args.get("svg"); !svg.empty()) {
    if (!io::save_text_file(svg, to_svg_gantt(schedule, tasks, platform))) {
      std::cerr << "cannot write " << svg << '\n';
      return 1;
    }
    std::cout << "wrote " << svg << '\n';
  }
  if (const std::string trace = args.get("trace"); !trace.empty()) {
    // Event-based exporter: carries spoliation markers and counter tracks
    // the placement-only to_chrome_trace cannot reconstruct.
    if (!io::save_text_file(trace,
                            obs::chrome_trace_from_events(
                                run->events.events(), platform, tasks))) {
      std::cerr << "cannot write " << trace << '\n';
      return 1;
    }
    std::cout << "wrote " << trace << '\n';
  }
  return 0;
}

/// Export the run's event stream: Chrome trace-event JSON (`--out`, loadable
/// in Perfetto / chrome://tracing) and/or the flat event CSV (`--csv`).
int cmd_trace(const Args& args) {
  const Platform platform(args.get_int("cpus", 20), args.get_int("gpus", 4));
  const std::string out = args.get("out");
  const std::string csv = args.get("csv");
  if (out.empty() && csv.empty()) {
    std::cerr << "trace: need --out FILE and/or --csv FILE\n";
    return usage();
  }
  int exit_code = 0;
  const auto run = run_algorithm(args, platform, &exit_code);
  if (!run.has_value()) return exit_code;

  if (!out.empty()) {
    // Embed the run's rollup (scheduler counters, cp_* attribution,
    // histogram summaries) as trace metadata: the numbers come from the
    // same registries the Prometheus exposition reports.
    obs::CounterRegistry counters = obs::registry_from(
        obs::counters_from_events(run->events.events(), platform));
    const CriticalPathReport cp =
        build_critical_path(run->schedule, run->tasks, platform,
                            run->is_graph ? &run->graph : nullptr);
    add_to_registry(cp, counters);
    obs::MetricsRegistry metrics;
    obs::derive_metrics(run->events.events(), platform, &metrics);
    obs::ChromeTraceOptions trace_options;
    trace_options.counters = &counters;
    trace_options.metrics = &metrics;
    const std::string json = obs::chrome_trace_from_events(
        run->events.events(), platform, run->tasks, trace_options);
    std::string error;
    if (!obs::validate_chrome_trace(json, platform, &error)) {
      std::cerr << "internal error: emitted trace is invalid: " << error
                << '\n';
      return 1;
    }
    if (!io::save_text_file(out, json)) {
      std::cerr << "cannot write " << out << '\n';
      return 1;
    }
    std::cout << "wrote " << out << " (" << run->events.size()
              << " events)\n";
  }
  if (!csv.empty()) {
    if (!io::save_text_file(csv, obs::csv_from_events(run->events.events()))) {
      std::cerr << "cannot write " << csv << '\n';
      return 1;
    }
    std::cout << "wrote " << csv << " (" << run->events.size()
              << " events)\n";
  }
  return 0;
}

/// Counter report plus bound-watchdog verdict of one run. With
/// `--critical-path`, also attribute the makespan to the chain of task
/// executions and waits that produced it (sched/critical_path.hpp) and fold
/// the cp_* aggregates into the counter registry.
///
/// `--metrics-out FILE` writes a Prometheus text exposition of the run: the
/// phase-timer stats of an attached MetricsCollector, the distribution
/// metrics derived from the event stream (queue-wait, task durations, idle
/// intervals, per-resource busy time) and every counter — scheduler
/// counters and the cp_* critical-path attribution, imported from the same
/// CounterRegistry the text report prints, so the two cannot drift apart.
/// `--flame FILE` writes the collector's call paths as collapsed stacks
/// (speedscope-compatible); `--tick-clock` swaps the wall clock for the
/// deterministic tick clock so both outputs are byte-stable.
int cmd_report(const Args& args) {
  const Platform platform(args.get_int("cpus", 20), args.get_int("gpus", 4));
  const std::string metrics_out = args.get("metrics-out");
  const std::string flame_out = args.get("flame");
  obs::TickClock tick_clock;
  obs::MetricsCollector collector(
      args.options.count("tick-clock") != 0 ? &tick_clock : nullptr);
  const bool collect = !metrics_out.empty() || !flame_out.empty();
  int exit_code = 0;
  const auto run = run_algorithm(args, platform, &exit_code,
                                 collect ? &collector : nullptr);
  if (!run.has_value()) return exit_code;

  const obs::SchedulerCounters counters =
      obs::counters_from_events(run->events.events(), platform);
  obs::CounterRegistry registry = obs::registry_from(counters);
  std::optional<CriticalPathReport> cp;
  // The exposition always carries the cp_* attribution — a scrape should
  // not depend on the report flag; the flag only controls the prose.
  if (args.options.count("critical-path") != 0 || !metrics_out.empty()) {
    cp = build_critical_path(run->schedule, run->tasks, platform,
                             run->is_graph ? &run->graph : nullptr);
    add_to_registry(*cp, registry);
  }
  std::cout << "algorithm: " << args.get("algo", "hp")
            << "\ntasks: " << run->tasks.size()
            << "\nmakespan: " << run->schedule.makespan()
            << "\nlower bound: " << run->lower_bound << "\n\n"
            << registry.to_string() << '\n';
  if (cp.has_value() && args.options.count("critical-path") != 0) {
    std::cout << describe(*cp, run->tasks, platform) << '\n';
  }

  if (!metrics_out.empty()) {
    obs::MetricsRegistry metrics;
    collector.export_to(&metrics);
    obs::derive_metrics(run->events.events(), platform, &metrics);
    obs::import_counter_registry(registry, &metrics);
    const std::string text = obs::prometheus_text(metrics);
    std::string error;
    if (!obs::validate_prometheus_text(text, &error)) {
      std::cerr << "internal error: emitted exposition is invalid: " << error
                << '\n';
      return 1;
    }
    if (!io::save_text_file(metrics_out, text)) {
      std::cerr << "cannot write " << metrics_out << '\n';
      return 1;
    }
    std::cout << "wrote " << metrics_out << '\n';
  }
  if (!flame_out.empty()) {
    if (!io::save_text_file(flame_out, obs::collapsed_stacks(collector))) {
      std::cerr << "cannot write " << flame_out << '\n';
      return 1;
    }
    std::cout << "wrote " << flame_out << '\n';
  }

  obs::WatchdogOptions wd;
  wd.dag = run->is_graph;
  const obs::BoundCheck check = obs::check_schedule_bound(
      run->schedule, run->lower_bound, platform, wd);
  std::cout << "watchdog: " << obs::describe(check) << '\n';
  return check.violated && !check.advisory ? 3 : 0;
}

/// Fault-injection run: build (or load) a deterministic fault plan, run the
/// chosen scheduler through it, and report the recovery outcome, surviving-
/// platform watchdog verdict and counters.
int cmd_faults(const Args& args) {
  const auto text = io::load_text_file(args.get("in"));
  if (!text.has_value()) {
    std::cerr << "cannot read " << args.get("in") << '\n';
    return 1;
  }
  const Platform platform(args.get_int("cpus", 20), args.get_int("gpus", 4));
  const std::string algo = args.get("algo", "hp");
  const RankScheme rank = parse_rank(args.get("rank", "min"));

  // Load the workload; an independent-task instance becomes an edge-free
  // graph so one code path (and the static faulty replay) serves both.
  std::string error;
  TaskGraph graph;
  if (text->find("\nedge ") != std::string::npos) {
    auto parsed = io::graph_from_text(*text, &error);
    if (!parsed.has_value()) {
      std::cerr << error << '\n';
      return 1;
    }
    graph = std::move(*parsed);
  } else {
    const auto inst = io::instance_from_text(*text, &error);
    if (!inst.has_value()) {
      std::cerr << error << '\n';
      return 1;
    }
    for (const Task& t : inst->tasks()) graph.add_task(t);
    graph.finalize();
  }
  assign_priorities(graph, rank);
  const double lower_bound = dag_lower_bound(graph, platform).value();

  // The fault plan: from a file, or generated around the fault-free
  // HeteroPrio makespan so injected instants land inside the run.
  fault::FaultPlan plan;
  if (const std::string plan_file = args.get("plan"); !plan_file.empty()) {
    const auto plan_text = io::load_text_file(plan_file);
    if (!plan_text.has_value()) {
      std::cerr << "cannot read " << plan_file << '\n';
      return 1;
    }
    if (!fault::FaultPlan::from_text(*plan_text, &plan, &error)) {
      std::cerr << plan_file << ": " << error << '\n';
      return 1;
    }
  } else {
    fault::FaultSpec spec;
    spec.crashes = args.get_int("crashes", 0);
    spec.stragglers = args.get_int("stragglers", 0);
    spec.task_fail_prob = args.get_double("task-fail", 0.0);
    if (args.options.count("slow")) {
      spec.slowdown_min = spec.slowdown_max = args.get_double("slow", 4.0);
    }
    spec.max_attempts = args.get_int("retries", 3) + 1;
    spec.retry_backoff = args.get_double("backoff", 0.0);
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    spec.horizon = args.get_double("horizon", 0.0);
    if (spec.horizon <= 0.0) {
      spec.horizon = heteroprio_dag(graph, platform).makespan();
    }
    plan = fault::FaultPlan::generate(spec, platform);
  }
  std::cout << plan.describe();
  if (const std::string save = args.get("save-plan"); !save.empty()) {
    if (!io::save_text_file(save, plan.to_text())) {
      std::cerr << "cannot write " << save << '\n';
      return 1;
    }
    std::cout << "wrote " << save << '\n';
  }

  obs::EventRecorder events;
  Schedule schedule;
  fault::RecoveryReport recovery;
  if (algo == "hp" || algo == "hp-nospol") {
    HeteroPrioOptions hp_options;
    hp_options.enable_spoliation = algo == "hp";
    hp_options.sink = &events;
    hp_options.faults = &plan;
    HeteroPrioStats stats;
    schedule = heteroprio_dag(graph, platform, hp_options, &stats);
    recovery = stats.recovery;
  } else if (algo == "heft" || algo == "dualhp") {
    const Schedule planned =
        algo == "heft"
            ? heft(graph, platform,
                   {.rank = rank == RankScheme::kFifo ? RankScheme::kAvg
                                                      : rank})
            : dualhp_dag(graph, platform,
                         {.fifo_order = rank == RankScheme::kFifo});
    auto replayed = fault::execute_plan_with_faults(planned, graph, platform,
                                                    plan, {}, &events);
    schedule = std::move(replayed.schedule);
    recovery = replayed.recovery;
  } else {
    std::cerr << "unknown algorithm '" << algo << "' (faults supports "
              << "hp|hp-nospol|heft|dualhp)\n";
    return 2;
  }

  // Straggler windows stretch wall-clock durations and a degraded run may
  // leave tasks unplaced; everything that ran must still be exclusive and
  // dependency-ordered.
  const auto check = check_schedule(
      schedule, graph, platform,
      ScheduleCheckOptions{.require_complete = false,
                           .exact_durations = plan.stragglers().empty() &&
                                              plan.task_fail_prob() <= 0.0 &&
                                              plan.crashes().empty()});
  if (!check.ok) {
    std::cerr << "internal error: invalid schedule: " << check.message << '\n';
    return 1;
  }

  const double makespan = schedule.makespan();
  std::cout << "\nalgorithm: " << algo << "\ntasks: " << graph.size()
            << "\nmakespan: " << makespan << "\nlower bound: " << lower_bound
            << "\nratio: " << makespan / lower_bound
            << "\nworker crashes: " << recovery.worker_crashes
            << "\ncrash requeues: " << recovery.crash_requeues
            << "\nstraggler windows: " << recovery.straggler_windows
            << "\ntask failures: " << recovery.task_failures
            << "\ntask retries: " << recovery.task_retries
            << "\ntasks abandoned: " << recovery.tasks_abandoned
            << "\ntasks unfinished: " << recovery.tasks_unfinished
            << "\ndegraded: " << (recovery.degraded ? "yes" : "no") << '\n';

  // Watchdog against the platform that survived to the end of the run.
  const int cpus =
      platform.cpus() - plan.crashed_before(makespan, Resource::kCpu, platform);
  const int gpus =
      platform.gpus() - plan.crashed_before(makespan, Resource::kGpu, platform);
  obs::WatchdogOptions wd;
  wd.dag = graph.num_edges() > 0;
  const obs::BoundCheck bound_check =
      obs::check_makespan_bound(makespan, lower_bound, cpus, gpus, wd);
  std::cout << "surviving platform: " << cpus << " cpu + " << gpus
            << " gpu\nwatchdog: " << obs::describe(bound_check) << '\n';

  if (const std::string trace = args.get("trace"); !trace.empty()) {
    const std::string json = obs::chrome_trace_from_events(
        events.events(), platform, graph.tasks());
    if (!obs::validate_chrome_trace(json, platform, &error)) {
      std::cerr << "internal error: emitted trace is invalid: " << error
                << '\n';
      return 1;
    }
    if (!io::save_text_file(trace, json)) {
      std::cerr << "cannot write " << trace << '\n';
      return 1;
    }
    std::cout << "wrote " << trace << " (" << events.size() << " events)\n";
  }
  if (const std::string csv = args.get("csv"); !csv.empty()) {
    if (!io::save_text_file(csv, obs::csv_from_events(events.events()))) {
      std::cerr << "cannot write " << csv << '\n';
      return 1;
    }
    std::cout << "wrote " << csv << " (" << events.size() << " events)\n";
  }
  return 0;
}

/// Rolling-horizon online run: tasks arrive over simulated time (generated
/// Poisson stream or a .hpo file), optionally under a fault plan, with
/// admission control, deadlines, and straggler respawn. Prints the
/// robustness accounting and asserts the zero-silent-drop identity.
int cmd_online(const Args& args) {
  const auto text = io::load_text_file(args.get("in"));
  if (!text.has_value()) {
    std::cerr << "cannot read " << args.get("in") << '\n';
    return 1;
  }
  const Platform platform(args.get_int("cpus", 20), args.get_int("gpus", 4));
  const RankScheme rank = parse_rank(args.get("rank", "min"));

  std::string error;
  TaskGraph graph;
  if (text->find("\nedge ") != std::string::npos) {
    auto parsed = io::graph_from_text(*text, &error);
    if (!parsed.has_value()) {
      std::cerr << error << '\n';
      return 1;
    }
    graph = std::move(*parsed);
  } else {
    const auto inst = io::instance_from_text(*text, &error);
    if (!inst.has_value()) {
      std::cerr << error << '\n';
      return 1;
    }
    for (const Task& t : inst->tasks()) graph.add_task(t);
    graph.finalize();
  }
  assign_priorities(graph, rank);
  const double lower_bound = dag_lower_bound(graph, platform).value();

  // Fault plan: a file, or generated when any injection flag is present.
  fault::FaultPlan plan;
  if (const std::string plan_file = args.get("plan"); !plan_file.empty()) {
    const auto plan_text = io::load_text_file(plan_file);
    if (!plan_text.has_value()) {
      std::cerr << "cannot read " << plan_file << '\n';
      return 1;
    }
    if (!fault::FaultPlan::from_text(*plan_text, &plan, &error)) {
      std::cerr << plan_file << ": " << error << '\n';
      return 1;
    }
  } else if (args.options.count("crashes") || args.options.count("stragglers") ||
             args.options.count("task-fail") || args.options.count("slow")) {
    fault::FaultSpec spec;
    spec.crashes = args.get_int("crashes", 0);
    spec.stragglers = args.get_int("stragglers", 0);
    spec.task_fail_prob = args.get_double("task-fail", 0.0);
    if (args.options.count("slow")) {
      spec.slowdown_min = spec.slowdown_max = args.get_double("slow", 4.0);
    }
    spec.max_attempts = args.get_int("retries", 3) + 1;
    spec.retry_backoff = args.get_double("backoff", 0.0);
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    spec.horizon = args.get_double("horizon", 0.0);
    if (spec.horizon <= 0.0) {
      spec.horizon = heteroprio_dag(graph, platform).makespan();
    }
    plan = fault::FaultPlan::generate(spec, platform);
  }

  // Arrival stream: a .hpo file, or a Poisson draw from --rate (0 = batch).
  online::ArrivalPlan arrivals;
  if (const std::string file = args.get("arrivals"); !file.empty()) {
    const auto arrivals_text = io::load_text_file(file);
    if (!arrivals_text.has_value()) {
      std::cerr << "cannot read " << file << '\n';
      return 1;
    }
    if (!online::ArrivalPlan::from_text(*arrivals_text, &arrivals, &error)) {
      std::cerr << file << ": " << error << '\n';
      return 1;
    }
  } else {
    online::ArrivalSpec spec;
    spec.rate = args.get_double("rate", 0.0);
    spec.deadline_factor = args.get_double("deadline-factor", 0.0);
    spec.seed = static_cast<std::uint64_t>(args.get_int("arrival-seed", 1));
    arrivals = online::ArrivalPlan::generate(spec, graph.tasks());
  }
  std::cout << arrivals.describe();
  if (const std::string save = args.get("save-arrivals"); !save.empty()) {
    if (!io::save_text_file(save, arrivals.to_text())) {
      std::cerr << "cannot write " << save << '\n';
      return 1;
    }
    std::cout << "wrote " << save << '\n';
  }

  obs::EventRecorder events;
  online::OnlineOptions options;
  options.sink = &events;
  if (!plan.empty()) options.faults = &plan;
  options.arrivals = &arrivals;
  options.reschedule_period = args.get_double("period", 0.0);
  options.watermark_high =
      static_cast<std::size_t>(args.get_int("watermark", 0));
  options.watermark_low =
      static_cast<std::size_t>(args.get_int("watermark-low", 0));
  options.shed_policy = args.get("shed", "defer") == "reject"
                            ? online::ShedPolicy::kReject
                            : online::ShedPolicy::kDefer;
  options.straggler_factor = args.get_double("straggler-factor", 0.0);
  options.respawn_budget = args.get_int("respawns", 0);

  online::OnlineStats stats;
  const Schedule schedule =
      graph.num_edges() > 0
          ? online::online_run_dag(graph, platform, options, &stats)
          : online::online_run(graph.tasks(), platform, options, &stats);

  const auto check = check_schedule(
      schedule, graph, platform,
      ScheduleCheckOptions{.require_complete = false,
                           .exact_durations = false});
  if (!check.ok) {
    std::cerr << "internal error: invalid schedule: " << check.message << '\n';
    return 1;
  }
  // Zero-silent-drop identity, enforced at the CLI boundary too.
  std::size_t placed = 0;
  for (const Placement& p : schedule.placements()) placed += p.placed() ? 1 : 0;
  if (placed + stats.tasks_rejected +
          static_cast<std::size_t>(stats.recovery.tasks_unfinished) !=
      graph.size()) {
    std::cerr << "internal error: accounting leak (placed " << placed
              << " + rejected " << stats.tasks_rejected << " + unfinished "
              << stats.recovery.tasks_unfinished << " != " << graph.size()
              << ")\n";
    return 1;
  }

  const double makespan = schedule.makespan();
  std::cout << "\ntasks: " << graph.size() << "\nmakespan: " << makespan
            << "\nlower bound: " << lower_bound
            << "\nratio: " << makespan / lower_bound
            << "\narrived: " << stats.tasks_arrived
            << "\nadmitted: " << stats.tasks_admitted
            << "\nrejected: " << stats.tasks_rejected
            << "\ndeferred: " << stats.tasks_deferred
            << "\ndeadline misses: " << stats.deadline_misses
            << "\nreplans: " << stats.replans
            << "\nreschedule ticks: " << stats.reschedule_ticks
            << "\nmode changes: " << stats.mode_changes
            << "\nfinal mode: " << online::mode_name(stats.final_mode)
            << "\nworker crashes: " << stats.recovery.worker_crashes
            << "\ntask failures: " << stats.recovery.task_failures
            << "\ntask retries: " << stats.recovery.task_retries
            << "\nstraggler respawns: " << stats.recovery.straggler_respawns
            << "\ntasks abandoned: " << stats.recovery.tasks_abandoned
            << "\ntasks unfinished: " << stats.recovery.tasks_unfinished
            << "\ndegraded: " << (stats.recovery.degraded ? "yes" : "no")
            << '\n';

  if (const std::string trace = args.get("trace"); !trace.empty()) {
    const std::string json = obs::chrome_trace_from_events(
        events.events(), platform, graph.tasks());
    if (!obs::validate_chrome_trace(json, platform, &error)) {
      std::cerr << "internal error: emitted trace is invalid: " << error
                << '\n';
      return 1;
    }
    if (!io::save_text_file(trace, json)) {
      std::cerr << "cannot write " << trace << '\n';
      return 1;
    }
    std::cout << "wrote " << trace << " (" << events.size() << " events)\n";
  }
  if (const std::string csv = args.get("csv"); !csv.empty()) {
    if (!io::save_text_file(csv, obs::csv_from_events(events.events()))) {
      std::cerr << "cannot write " << csv << '\n';
      return 1;
    }
    std::cout << "wrote " << csv << " (" << events.size() << " events)\n";
  }
  return 0;
}

/// Measure the core perf baseline and emit BENCH_core.json; with
/// `--dag-out`, also measure the DAG baseline and emit BENCH_dag.json.
/// `--quick` is the CI smoke configuration (n=1000, N in {4,8} tiles, tiny
/// sweep; seconds of runtime).
int cmd_perf(const Args& args) {
  perf::PerfBaselineOptions options;
  perf::PerfDagOptions dag_options;
  if (args.options.count("quick")) {
    options.sizes = {1000};
    options.repetitions = 2;
    options.sweep_tiles = {4, 8};
    options.parallel_sizes = {1000};
    options.parallel_threads = {1, 2};
    dag_options.tile_counts = {4, 8};
    dag_options.repetitions = 2;
  }
  options.repetitions = args.get_int("reps", options.repetitions);
  options.sweep_threads = args.get_int("threads", options.sweep_threads);
  dag_options.repetitions = args.get_int("reps", dag_options.repetitions);
  const std::string out = args.get("out", "BENCH_core.json");

  const perf::PerfBaseline baseline = perf::run_perf_baseline(options);
  if (!perf::write_perf_baseline_json(baseline, out)) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  std::cout << "wrote " << out << " (" << baseline.series.size()
            << " series";
  if (baseline.speedup_n != 0) {
    std::cout << ", speedup vs reference at n=" << baseline.speedup_n << ": "
              << baseline.speedup_vs_reference << "x";
  }
  std::cout << ")\n";

  if (const std::string dag_out = args.get("dag-out"); !dag_out.empty()) {
    const perf::PerfDagBaseline dag = perf::run_perf_dag(dag_options);
    if (!perf::write_perf_dag_json(dag, dag_out)) {
      std::cerr << "cannot write " << dag_out << '\n';
      return 1;
    }
    std::cout << "wrote " << dag_out << " (" << dag.series.size()
              << " series";
    for (const perf::PerfDagSpeedup& s : dag.speedups) {
      std::cout << ", " << s.algorithm << " vs ref on " << s.kernel << " N="
                << s.tiles << ": " << s.value << "x";
    }
    std::cout << ")\n";
  }
  return 0;
}

/// Validate an emitted BENCH file: parses, right schema, every expected
/// series present (in any order) with a positive throughput — a failure
/// names each missing series. The schema tag of the file selects the
/// validator (hp-bench-core/v2, hp-bench-dag/v2 or hp-bench-obs/v1 — the
/// last also enforces the overhead budget). With `--against OLD`,
/// additionally join the series against a previous BENCH file and fail if
/// any series regressed beyond `--tolerance` (default 0.25) or went
/// missing, printing each one with its delta.
int cmd_perf_check(const Args& args) {
  const auto text = io::load_text_file(args.get("in"));
  if (!text.has_value()) {
    std::cerr << "cannot read " << args.get("in") << '\n';
    return 1;
  }
  const bool quick = args.options.count("quick") != 0;
  const std::string schema =
      perf::jsonscan::string_field(*text, "schema").value_or("");
  std::string error;
  bool ok = false;
  if (schema.rfind("hp-bench-dag/", 0) == 0) {
    const std::vector<int> tiles =
        quick ? std::vector<int>{4, 8} : std::vector<int>{10, 20, 40, 60};
    ok = perf::validate_perf_dag_json(*text, {"cholesky", "qr", "lu"}, tiles,
                                      &error);
  } else if (schema.rfind("hp-bench-online/", 0) == 0) {
    // Structural invariants only (zero_drop everywhere, a saturating arm
    // that left healthy mode, a batch-equivalent arm with stretch 1);
    // throughput regressions go through `--against` like every baseline.
    ok = perf::validate_perf_online_json(*text, &error);
  } else if (schema.rfind("hp-bench-serve/", 0) == 0) {
    // Structural invariants only (zero_drop everywhere, ordered latency
    // quantiles, a saturating arm that actually rejected work); throughput
    // regressions go through `--against` like every baseline.
    ok = perf::validate_perf_serve_json(*text, &error);
  } else if (schema.rfind("hp-bench-obs/", 0) == 0) {
    // Validate the document, then enforce the overhead budget it records
    // (or `--budget X`). `--quick` skips the budget: the smoke file comes
    // from a loaded CI machine where a 2% gate would be all noise.
    ok = perf::validate_perf_obs_json(*text, &error) &&
         (quick || perf::check_obs_budget(
                       *text, args.get_double("budget", 0.0), &error));
  } else {
    const std::vector<std::size_t> sizes =
        quick ? std::vector<std::size_t>{1000}
              : std::vector<std::size_t>{1000, 10000, 100000};
    const std::vector<std::size_t> par_sizes =
        quick ? std::vector<std::size_t>{1000}
              : std::vector<std::size_t>{100000, 1000000};
    const std::vector<int> par_threads =
        quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    ok = perf::validate_perf_baseline_json(*text, sizes, &error, par_sizes,
                                           par_threads);
  }
  if (!ok) {
    std::cerr << "invalid baseline: " << error << '\n';
    return 1;
  }

  if (const std::string against = args.get("against"); !against.empty()) {
    const auto old_text = io::load_text_file(against);
    if (!old_text.has_value()) {
      std::cerr << "cannot read " << against << '\n';
      return 1;
    }
    const double tolerance = args.get_double("tolerance", 0.25);
    const perf::PerfComparison cmp =
        perf::compare_series(*old_text, *text, tolerance);
    std::cout << perf::format_comparison(cmp);
    if (!cmp.ok()) {
      std::cerr << "perf-check: " << cmp.regressed.size()
                << " series regressed beyond " << tolerance * 100.0
                << "% and " << cmp.missing.size() << " went missing\n";
      return 1;
    }
  }
  std::cout << args.get("in") << ": ok\n";
  return 0;
}

/// In-process service driver: C client threads submit R scheduling
/// requests each through the multi-tenant service (src/serve/), then the
/// driver cross-checks request/response pairing, the zero-silent-drop
/// accounting identity, and — unless --no-verify — the bitwise
/// differential of every completed response against the direct engine
/// call. Workloads come from --in FILE (every request schedules that file)
/// or a --seed generator (one uniform instance per (client, request) cell).
int cmd_serve(const Args& args) {
  const Platform platform(args.get_int("cpus", 4), args.get_int("gpus", 2));
  if (platform.workers() == 0) {
    std::cerr << "platform has no workers (cpus+gpus=0)\n";
    return 2;
  }

  serve::DriverOptions driver;
  driver.clients = args.get_int("clients", 4);
  driver.requests_per_client = args.get_int("requests", 32);
  driver.verify = args.options.count("no-verify") == 0;
  driver.service.workers = args.get_int("workers", 2);
  driver.service.batch_size =
      args.get_int("batch", driver.service.batch_size);
  driver.service.watermark_high =
      static_cast<std::size_t>(args.get_int("watermark", 0));
  driver.service.watermark_low =
      static_cast<std::size_t>(args.get_int("watermark-low", 0));
  if (const std::string shed = args.get("shed", "defer"); shed == "reject") {
    driver.service.shed_policy = online::ShedPolicy::kReject;
  } else if (shed != "defer") {
    std::cerr << "unknown shed policy '" << shed << "'\n";
    return 2;
  }

  const std::string backend_arg = args.get("backend", "mixed");
  serve::Backend fixed_backend{};
  const bool mixed = backend_arg == "mixed";
  if (!mixed && !serve::backend_from_name(backend_arg, &fixed_backend)) {
    std::cerr << "unknown backend '" << backend_arg << "'\n";
    return 2;
  }
  const auto pick_backend = [&](int index) {
    if (!mixed) return fixed_backend;
    switch (index % 3) {
      case 0: return serve::Backend::kHp;
      case 1: return serve::Backend::kHeft;
      default: return serve::Backend::kDualHp;
    }
  };
  const RankScheme rank = parse_rank(args.get("rank", "min"));

  // Fixed-file workload: every request schedules the file's graph (DAG
  // priorities re-assigned under --rank, matching `hp_sched schedule`).
  TaskGraph base;
  const std::string in = args.get("in");
  if (!in.empty()) {
    const auto text = io::load_text_file(in);
    if (!text.has_value()) {
      std::cerr << "cannot read " << in << '\n';
      return 1;
    }
    std::string error;
    if (text->find("\nedge ") != std::string::npos) {
      auto graph = io::graph_from_text(*text, &error);
      if (!graph.has_value()) {
        std::cerr << error << '\n';
        return 1;
      }
      assign_priorities(*graph, rank);
      base = std::move(*graph);
    } else {
      const auto inst = io::instance_from_text(*text, &error);
      if (!inst.has_value()) {
        std::cerr << error << '\n';
        return 1;
      }
      TaskGraph graph(inst->name());
      for (const Task& t : inst->tasks()) graph.add_task(t);
      graph.finalize();
      base = std::move(graph);
    }
  }
  const std::uint64_t seed = std::stoull(args.get("seed", "1"));
  const std::size_t gen_tasks =
      static_cast<std::size_t>(std::max(1, args.get_int("tasks", 64)));

  const serve::DriverReport report = serve::run_driver(
      [&](int client, int index) {
        serve::Request request;
        request.tenant = client;
        request.backend = pick_backend(index);
        request.platform = platform;
        request.rank = rank;
        if (!in.empty()) {
          request.graph = base;
        } else {
          util::Rng rng(util::seed_from_cell(
              {seed, static_cast<std::uint64_t>(client),
               static_cast<std::uint64_t>(index)}));
          UniformGenParams params;
          params.num_tasks = gen_tasks;
          const Instance inst = uniform_instance(params, rng);
          TaskGraph graph("serve-" + std::to_string(client) + "-" +
                          std::to_string(index));
          for (const Task& t : inst.tasks()) {
            Task task = t;
            task.priority = rng.uniform(0.0, 16.0);
            graph.add_task(task);
          }
          graph.finalize();
          request.graph = std::move(graph);
        }
        return request;
      },
      driver);

  util::Table table({"tenant", "submitted", "completed", "rejected",
                     "deferred", "p50 ms", "p99 ms"},
                    3);
  for (const serve::DriverTenantReport& t : report.tenants) {
    table.row().cell(t.tenant).cell(t.submitted).cell(t.completed)
        .cell(t.rejected).cell(t.deferred)
        .cell(t.p50_latency_seconds * 1e3).cell(t.p99_latency_seconds * 1e3);
  }
  std::cout << "== Service run: " << driver.clients << " clients x "
            << driver.requests_per_client << " requests over "
            << driver.service.workers << " workers ==\n";
  table.print(std::cout);
  const serve::Service::Accounting& acct = report.accounting;
  std::cout << "accounting: submitted " << acct.submitted << " = accepted "
            << acct.accepted << " + rejected " << acct.rejected
            << " (deferred " << acct.deferred << ", shed-mode changes "
            << acct.shed_mode_changes << ")\n"
            << "throughput: " << report.requests_per_sec << " req/s, p50 "
            << report.p50_latency_seconds * 1e3 << " ms, p99 "
            << report.p99_latency_seconds * 1e3 << " ms over "
            << report.wall_seconds << " s\n";
  if (!report.ok()) {
    std::cerr << "serve: FAILED: " << report.first_error << '\n';
    return 1;
  }
  std::cout << "serve: ok (" << report.responses
            << " responses paired, accounting balanced"
            << (driver.verify ? ", bitwise differential held" : "") << ")\n";
  return 0;
}

/// Parse "hp,heft" / "all" into scheduler ids (empty = all).
bool parse_scheduler_list(const std::string& text,
                          std::vector<fuzz::SchedulerId>* out) {
  out->clear();
  if (text.empty() || text == "all") return true;
  std::istringstream iss(text);
  std::string name;
  while (std::getline(iss, name, ',')) {
    fuzz::SchedulerId id{};
    if (!fuzz::scheduler_from_name(name, &id)) {
      std::cerr << "unknown scheduler '" << name << "'\n";
      return false;
    }
    out->push_back(id);
  }
  return true;
}

int cmd_fuzz(const Args& args) {
  fuzz::RunnerOptions options;
  options.seed = std::stoull(args.get("seed", "1"));
  options.runs = args.get_int("runs", 100);
  options.knobs.max_tasks = args.get_int("max-tasks", options.knobs.max_tasks);
  options.max_seconds = args.get_double("max-seconds", 0.0);
  options.shrink_failures = args.options.count("no-shrink") == 0;
  options.out_dir = args.get("repro-dir");
  if (!parse_scheduler_list(args.get("scheduler", "all"),
                            &options.schedulers)) {
    return 2;
  }
  std::string error;
  if (!fuzz::parse_props(args.get("props", "all"), &options.oracle.props,
                         &error)) {
    std::cerr << error << '\n';
    return 2;
  }

  const fuzz::FuzzReport report = fuzz::run_fuzz(options);
  const std::string text = fuzz::format_report(report, options);
  const std::string out = args.get("out");
  if (!out.empty()) {
    if (!io::save_text_file(out, text)) {
      std::cerr << "cannot write " << out << '\n';
      return 1;
    }
  }
  std::cout << text;
  if (!report.ok()) {
    std::cerr << report.failures.size()
              << " property violation(s); shrunk repros above\n";
    return 1;
  }
  return 0;
}

/// Distill a worst-case family witness into a corpus entry whose min-ratio
/// directive pins the measured makespan/lower-bound ratio.
fuzz::CorpusCase worstcase_entry(const WorstCaseInstance& wc,
                                 const std::string& name) {
  fuzz::CorpusCase entry;
  TaskGraph graph(name);
  for (const Task& t : wc.instance.tasks()) graph.add_task(t);
  graph.finalize();
  entry.c.graph = std::move(graph);
  entry.c.name = name;
  entry.c.platform = wc.platform;
  const double lb = opt_lower_bound(entry.c.graph.tasks(), wc.platform);
  const double makespan =
      heteroprio(entry.c.graph.tasks(), wc.platform, {}).makespan();
  if (lb > 0.0) entry.min_ratio = makespan / lb;
  return entry;
}

int cmd_corpus(const Args& args) {
  const std::string dir = args.get("dir", "tests/corpus");
  if (args.options.count("seed-worstcase") != 0) {
    const std::vector<std::pair<std::string, WorstCaseInstance>> families = {
        {"thm8-phi", theorem8_instance()},
        {"thm11-m4", theorem11_instance(4, 8)},
        {"thm14-k1", theorem14_instance(1)},
    };
    for (const auto& [name, wc] : families) {
      const std::string path = dir + "/" + name + ".hpi";
      if (!fuzz::save_corpus_file(path, worstcase_entry(wc, name))) {
        std::cerr << "cannot write " << path << '\n';
        return 1;
      }
      std::cout << "wrote " << path << '\n';
    }
  }

  const std::vector<std::string> files = fuzz::list_corpus_files(dir);
  if (files.empty()) {
    std::cerr << "no corpus files (*.hpi/*.hpg) under " << dir << '\n';
    return 1;
  }
  int bad = 0;
  for (const std::string& path : files) {
    fuzz::CorpusCase entry;
    std::string error;
    if (!fuzz::load_corpus_file(path, &entry, &error)) {
      std::cerr << error << '\n';
      ++bad;
      continue;
    }
    const fuzz::CorpusVerdict verdict = fuzz::replay_corpus_case(entry);
    if (verdict.ok()) {
      std::cout << path << ": ok (" << verdict.properties_checked
                << " properties over " << verdict.schedulers_replayed
                << " schedulers)\n";
    } else {
      ++bad;
      for (const fuzz::PropertyFailure& f : verdict.failures) {
        std::cerr << path << ": " << f.property << " [" << f.scheduler
                  << "] " << f.detail << '\n';
      }
    }
  }
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return usage();
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";  // boolean flag
    }
  }
  if (command == "generate") return cmd_generate(args);
  if (command == "info") return cmd_info(args);
  if (command == "bound") return cmd_bound(args);
  if (command == "schedule") return cmd_schedule(args);
  if (command == "trace") return cmd_trace(args);
  if (command == "report") return cmd_report(args);
  if (command == "faults") return cmd_faults(args);
  if (command == "online") return cmd_online(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "perf") return cmd_perf(args);
  if (command == "perf-check") return cmd_perf_check(args);
  if (command == "fuzz") return cmd_fuzz(args);
  if (command == "corpus") return cmd_corpus(args);
  return usage();
}
